package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"pulsedos/internal/scenario"
)

func postBatch(t *testing.T, ts *httptest.Server, body, query string) ([]BatchEntry, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/runs/batch"+query, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []BatchEntry
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	}
	return entries, resp.StatusCode
}

func batchBody(docs ...string) string {
	return "[" + strings.Join(docs, ",") + "]"
}

// TestBatchSubmit pins the happy path: N documents admit in order, each gets
// its own run id, and ?wait=1 returns every entry terminal.
func TestBatchSubmit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	s.computeFn = func(ctx context.Context, cfg scenario.Config, progress func(float64)) (map[string][]byte, error) {
		return map[string][]byte{ArtifactResult: []byte(`{"ok": true}`)}, nil
	}
	entries, code := postBatch(t, ts, batchBody(smallDoc(1), smallDoc(2), smallDoc(3)), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", code)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3", len(entries))
	}
	seen := map[string]bool{}
	for i, e := range entries {
		if e.Index != i {
			t.Errorf("entry %d carries index %d", i, e.Index)
		}
		if e.Error != "" || e.ID == "" {
			t.Fatalf("entry %d not admitted: %+v", i, e)
		}
		if seen[e.ID] {
			t.Errorf("entry %d reuses run id %s", i, e.ID)
		}
		seen[e.ID] = true
		if e.Status == nil || e.Status.State != StateDone {
			t.Errorf("entry %d not done after ?wait=1: %+v", i, e.Status)
		}
		if got := getJob(t, ts, e.ID); got.State != StateDone {
			t.Errorf("run %s not retrievable as done: %+v", e.ID, got)
		}
	}
}

// TestBatchMixedAdmission pins per-entry failure isolation: a malformed
// document inside the array is reported on its own entry (with the HTTP
// status it maps to) and never rejects its neighbors.
func TestBatchMixedAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	s.computeFn = func(ctx context.Context, cfg scenario.Config, progress func(float64)) (map[string][]byte, error) {
		return map[string][]byte{ArtifactResult: []byte(`{}`)}, nil
	}
	bad := `{"topology": {"kind": "donut"}, "measureSec": 1}`
	entries, code := postBatch(t, ts, batchBody(smallDoc(1), bad, smallDoc(2)), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", code)
	}
	if len(entries) != 3 {
		t.Fatalf("%d entries, want 3", len(entries))
	}
	if entries[0].Error != "" || entries[2].Error != "" {
		t.Errorf("good neighbors rejected: %+v / %+v", entries[0], entries[2])
	}
	if entries[1].Error == "" || entries[1].ID != "" {
		t.Errorf("malformed document admitted: %+v", entries[1])
	}
	if entries[1].HTTPStatus != http.StatusBadRequest {
		t.Errorf("malformed document mapped to HTTP %d, want 400", entries[1].HTTPStatus)
	}
}

// TestBatchCacheFastPath pins the per-document cache fast path: a document
// whose key is already stored is answered done+cached inside the batch
// without invoking compute, while unseen neighbors run normally.
func TestBatchCacheFastPath(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	cachedDoc := smallDoc(42)
	cfg, err := scenario.Load(strings.NewReader(cachedDoc))
	if err != nil {
		t.Fatal(err)
	}
	key, err := scenario.Key(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cache().Put(key, cfg.Name, "test", map[string][]byte{ArtifactResult: []byte(`{"cached": true}`)}); err != nil {
		t.Fatal(err)
	}
	s.computeFn = func(ctx context.Context, cfg scenario.Config, progress func(float64)) (map[string][]byte, error) {
		if cfg.Seed == 42 {
			return nil, fmt.Errorf("compute invoked for the cached key")
		}
		return map[string][]byte{ArtifactResult: []byte(`{}`)}, nil
	}
	entries, code := postBatch(t, ts, batchBody(cachedDoc, smallDoc(7)), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", code)
	}
	if e := entries[0]; e.Status == nil || e.Status.State != StateDone || !e.Status.Cached {
		t.Errorf("cached entry: %+v", e.Status)
	}
	if e := entries[1]; e.Status == nil || e.Status.State != StateDone || e.Status.Cached {
		t.Errorf("computed entry: %+v", e.Status)
	}
}

// TestBatchRejectsMalformedBodies pins whole-request rejections: non-array
// bodies, empty arrays, and arrays beyond the run limit.
func TestBatchRejectsMalformedBodies(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if _, code := postBatch(t, ts, `{"not": "an array"}`, ""); code != http.StatusBadRequest {
		t.Errorf("object body: HTTP %d, want 400", code)
	}
	if _, code := postBatch(t, ts, `[]`, ""); code != http.StatusBadRequest {
		t.Errorf("empty array: HTTP %d, want 400", code)
	}
	huge := make([]string, maxBatchRuns+1)
	for i := range huge {
		huge[i] = smallDoc(i)
	}
	if _, code := postBatch(t, ts, batchBody(huge...), ""); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized array: HTTP %d, want 413", code)
	}
}

// sweepDoc is a figure-style sweep carrier: one document expanding to one
// attacked run per gamma value.
func sweepDoc(gammas ...float64) string {
	vals := make([]string, len(gammas))
	for i, g := range gammas {
		vals[i] = fmt.Sprintf("%g", g)
	}
	return fmt.Sprintf(`{
		"name": "sweep-stub",
		"topology": {"kind": "dumbbell", "flows": 2},
		"attack": {"kind": "aimd", "rateMbps": 10, "extentMs": 50},
		"measure": {"sweep": {"axis": "gamma", "values": [%s]}},
		"warmupSec": 0.2, "measureSec": 0.5, "seed": 3}`, strings.Join(vals, ","))
}

// TestBatchExpandsSweepDocument pins the figure-document path: a sweep
// carrier submitted through the batch endpoint yields one entry per expanded
// point — numbered (index, point) in sweep-value order — each its own run
// with the gamma substituted, while plain neighbors keep one entry.
func TestBatchExpandsSweepDocument(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})
	var mu sync.Mutex
	var gammas []float64
	s.computeFn = func(ctx context.Context, cfg scenario.Config, progress func(float64)) (map[string][]byte, error) {
		if cfg.Attack != nil {
			mu.Lock()
			gammas = append(gammas, cfg.Attack.Gamma)
			mu.Unlock()
		}
		return map[string][]byte{ArtifactResult: []byte(`{}`)}, nil
	}
	entries, code := postBatch(t, ts, batchBody(sweepDoc(0.3, 0.5, 0.8), smallDoc(1)), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", code)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries, want 4 (3 sweep points + 1 plain)", len(entries))
	}
	wantRef := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}}
	for i, e := range entries {
		if e.Index != wantRef[i][0] || e.Point != wantRef[i][1] {
			t.Errorf("entry %d carries (index=%d, point=%d), want (%d, %d)",
				i, e.Index, e.Point, wantRef[i][0], wantRef[i][1])
		}
		if e.Error != "" || e.ID == "" {
			t.Fatalf("entry %d not admitted: %+v", i, e)
		}
		if e.Status == nil || e.Status.State != StateDone {
			t.Errorf("entry %d not done after ?wait=1: %+v", i, e.Status)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	sort.Float64s(gammas)
	if want := []float64{0.3, 0.5, 0.8}; !slicesEqual(gammas, want) {
		t.Errorf("computed gammas %v, want %v", gammas, want)
	}
}

func slicesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchMetersExpandedRuns pins that the batch bound meters expanded
// points, not submitted documents: a few carriers whose expansion crosses
// the run limit are rejected whole.
func TestBatchMetersExpandedRuns(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	gammas := make([]float64, 200)
	for i := range gammas {
		gammas[i] = float64(i+1) / 256
	}
	wide := sweepDoc(gammas...)
	if _, code := postBatch(t, ts, batchBody(wide, wide), ""); code != http.StatusRequestEntityTooLarge {
		t.Errorf("over-expanding batch: HTTP %d, want 413", code)
	}
}

// TestSingleRunRejectsSweep pins that the single-run endpoint refuses a
// sweep carrier (it maps to many runs) and points at the batch endpoint.
func TestSingleRunRejectsSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Post(ts.URL+"/runs", "application/json", strings.NewReader(sweepDoc(0.3, 0.5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("HTTP %d, want 400", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "batch") {
		t.Errorf("rejection %q does not point at the batch endpoint", body)
	}
}
