package figures

import (
	"errors"
	"fmt"
	"math"

	"pulsedos/internal/experiments"
	"pulsedos/internal/optimize"
	"pulsedos/internal/scenario"
)

// ablationPlan compiles a §5 ablation: one gain curve per topology variant at
// the shared ablation attack point, with per-arm series selected by the
// caller (the AQM and packet-size ablations plot measured-only curves).
func ablationPlan(
	id, title string,
	arms []struct {
		label string
		top   scenario.Topology
	},
	measuredOnly bool,
	peakNotes bool,
	trailingNote string,
) func(experiments.Scale) (*figurePlan, error) {
	return func(scale experiments.Scale) (*figurePlan, error) {
		cs := &curveSet{}
		for _, arm := range arms {
			c, err := compileGainCurve(id+"/"+arm.label, arm.top, scale,
				experiments.AblationRate, experiments.AblationExtent, scale.Gammas, 1)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", arm.label, err)
			}
			cs.add(arm.label, c)
		}
		return &figurePlan{
			docs: cs.docs,
			assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
				res := &experiments.FigureResult{ID: id, Title: title}
				for i, label := range cs.labels {
					points, err := cs.points(arts, i)
					if err != nil {
						return nil, err
					}
					analytic, measured := experiments.GainSeries(label, points)
					if measuredOnly {
						res.Series = append(res.Series, measured)
					} else {
						res.Series = append(res.Series, analytic, measured)
					}
					if peakNotes {
						peak, err := experiments.PeakPoint(points)
						if err != nil {
							return nil, err
						}
						note(res, "%s: peak measured gain %.3f at gamma=%.2f",
							label, peak.MeasuredGain, peak.Gamma)
					}
				}
				if trailingNote != "" {
					note(res, "%s", trailingNote)
				}
				return res, nil
			},
		}, nil
	}
}

func dumbbell15(mutate func(*scenario.Topology)) scenario.Topology {
	top := scenario.Topology{Kind: "dumbbell", Flows: 15}
	if mutate != nil {
		mutate(&top)
	}
	return top
}

type ablationArm = struct {
	label string
	top   scenario.Topology
}

// aqmPlan compiles the RED vs drop-tail vs Adaptive RED comparison.
var aqmPlan = ablationPlan("ablation-aqm", "RED vs drop-tail vs Adaptive RED under PDoS",
	[]ablationArm{
		{"red", dumbbell15(nil)},
		{"droptail", dumbbell15(func(t *scenario.Topology) { t.DropTail = true })},
		{"adaptive-red", dumbbell15(func(t *scenario.Topology) { t.AdaptiveRED = true })},
	}, true, true, "")

// dackPlan compiles the delayed-ACK ratio comparison (the d in Eq. 1).
var dackPlan = ablationPlan("ablation-dack", "delayed-ACK ratio d under PDoS",
	[]ablationArm{
		{"d=1", dumbbell15(func(t *scenario.Topology) { t.AckEvery = 1 })},
		{"d=2", dumbbell15(func(t *scenario.Topology) { t.AckEvery = 2 })},
	}, false, false,
	"Eq. 1: Wc scales as 1/d, so d=2 victims hold smaller windows and degrade more")

// aimdPlan compiles the AIMD(a,b) variant comparison.
var aimdPlan = ablationPlan("ablation-aimd", "AIMD(a,b) variants under PDoS",
	[]ablationArm{
		{"AIMD(1,0.5)", dumbbell15(func(t *scenario.Topology) {
			t.AIMDIncreaseA = 1
			t.AIMDDecreaseB = 0.5
		})},
		{"AIMD(0.5,0.875)", dumbbell15(func(t *scenario.Topology) {
			t.AIMDIncreaseA = 0.5
			t.AIMDDecreaseB = 0.875
		})},
	}, false, false, "")

// pktsizePlan compiles the attack-packet-size comparison under packet-mode
// RED.
var pktsizePlan = ablationPlan("ablation-pktsize", "attack packet size vs gain (packet-mode RED)",
	[]ablationArm{
		{"pkt=1000B", dumbbell15(func(t *scenario.Topology) { t.AttackPacketBytes = 1000 })},
		{"pkt=50B", dumbbell15(func(t *scenario.Topology) { t.AttackPacketBytes = 50 })},
	}, true, true, "")

// defensePlan compiles the §1.1 defense study: per defense, one baseline plus
// one run per attack archetype, degradation read off the delivery accounts.
func defensePlan(scale experiments.Scale) (*figurePlan, error) {
	cfg := experiments.DefaultDefenseStudyConfig()
	cfg.Warmup = scale.Warmup
	cfg.Measure = scale.Measure
	cfg.Seed = scale.Seed
	defenses := []string{"none", "rto-jitter", "adaptive-red"}
	attacks := []string{"aimd", "shrew"}

	var docs []scenario.Config
	for _, defense := range defenses {
		top := scenario.Topology{Kind: "dumbbell", Flows: cfg.Flows, RTOMinMs: ms(cfg.MinRTO)}
		switch defense {
		case "rto-jitter":
			top.RTOJitter = cfg.RTOJitter
		case "adaptive-red":
			top.AdaptiveRED = true
		}
		base := scenario.Config{
			Name:       "ext-defense/" + defense + "/baseline",
			Topology:   top,
			WarmupSec:  cfg.Warmup.Seconds(),
			MeasureSec: cfg.Measure.Seconds(),
			Seed:       cfg.Seed,
		}
		docs = append(docs, base)
		for _, atk := range attacks {
			d := base
			d.Name = "ext-defense/" + defense + "/" + atk
			switch atk {
			case "aimd":
				d.Attack = &scenario.Attack{
					Kind:     "aimd",
					RateMbps: cfg.AttackRate / 1e6,
					ExtentMs: ms(cfg.Extent),
					PeriodMs: ms(cfg.AIMDPeriod),
				}
			case "shrew":
				// The shrew period resolves at run time from the victims'
				// RTO floor (minRTO/harmonic), which the topology's rtoMinMs
				// pins to cfg.MinRTO.
				d.Attack = &scenario.Attack{
					Kind:     "shrew",
					RateMbps: cfg.AttackRate / 1e6,
					ExtentMs: ms(cfg.Extent),
					Harmonic: 1,
				}
			}
			docs = append(docs, d)
		}
	}
	return &figurePlan{
		docs: docs,
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			res := &experiments.FigureResult{
				ID:    "ext-defense",
				Title: "RTO randomization & Adaptive RED vs both attack archetypes",
			}
			byAttack := map[string]*experiments.Series{}
			for di, defense := range defenses {
				base, err := decodeSummary(arts[di*3][0])
				if err != nil {
					return nil, err
				}
				if base.Delivered == 0 {
					return nil, fmt.Errorf("figures: defense %q baseline delivered nothing", defense)
				}
				for ai, atk := range attacks {
					sum, err := decodeSummary(arts[di*3+1+ai][0])
					if err != nil {
						return nil, err
					}
					deg := 1 - float64(sum.Delivered)/float64(base.Delivered)
					if deg < 0 {
						deg = 0
					}
					s, ok := byAttack[atk]
					if !ok {
						s = &experiments.Series{Label: atk + " degradation"}
						byAttack[atk] = s
					}
					s.Points = append(s.Points, experiments.Point{X: float64(len(s.Points)), Y: deg})
					note(res, "%s vs %s: degradation %.3f (TO=%d FR=%d)",
						defense, atk, deg, sum.Timeouts, sum.FastRecoveries)
				}
			}
			for _, name := range attacks {
				if s := byAttack[name]; s != nil {
					res.Series = append(res.Series, *s)
				}
			}
			return res, nil
		},
	}, nil
}

// micePlan compiles the mice-vs-elephants FCT study: a baseline and an
// attacked run of the structured workload, compared by completion times.
func micePlan(scale experiments.Scale) (*figurePlan, error) {
	cfg := experiments.DefaultMiceConfig()
	cfg.Warmup = scale.Warmup
	cfg.Measure = scale.Measure
	cfg.Seed = scale.Seed
	base := scenario.Config{
		Name:     "ext-mice/baseline",
		Topology: scenario.Topology{Kind: "dumbbell", Flows: cfg.Elephants + cfg.Mice},
		Workload: &scenario.Workload{
			Kind:           "mice",
			Elephants:      cfg.Elephants,
			Mice:           cfg.Mice,
			MiceSegments:   cfg.MiceSegments,
			ArrivalSpanSec: cfg.ArrivalSpan.Seconds(),
		},
		WarmupSec:  cfg.Warmup.Seconds(),
		MeasureSec: cfg.Measure.Seconds(),
		Seed:       cfg.Seed,
	}
	attacked := base
	attacked.Name = "ext-mice/attacked"
	attacked.Attack = &scenario.Attack{
		Kind:     "aimd",
		RateMbps: experiments.MiceAttackRate / 1e6,
		ExtentMs: ms(experiments.MiceAttackExtent),
		PeriodMs: ms(experiments.MiceAttackPeriod),
	}
	return &figurePlan{
		docs: []scenario.Config{base, attacked},
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			baseRes, err := decodeMice(arts[0][0])
			if err != nil {
				return nil, err
			}
			atkRes, err := decodeMice(arts[1][0])
			if err != nil {
				return nil, err
			}
			res := &experiments.FigureResult{ID: "ext-mice", Title: "short-flow completion times under PDoS"}
			res.Series = append(res.Series,
				experiments.Series{Label: "baseline FCT (s)", Points: fctPoints(baseRes.FCTs)},
				experiments.Series{Label: "attacked FCT (s)", Points: fctPoints(atkRes.FCTs)})
			note(res, "baseline: %d/%d completed, mean FCT %.2fs, p95 %.2fs",
				baseRes.Completed, baseRes.Started, baseRes.MeanFCT, baseRes.P95FCT)
			note(res, "attacked: %d/%d completed, mean FCT %.2fs, p95 %.2fs",
				atkRes.Completed, atkRes.Started, atkRes.MeanFCT, atkRes.P95FCT)
			return res, nil
		},
	}, nil
}

// fctPoints renders completion times as an indexed series.
func fctPoints(fcts []float64) []experiments.Point {
	out := make([]experiments.Point, len(fcts))
	for i, f := range fcts {
		out[i] = experiments.Point{X: float64(i), Y: f}
	}
	return out
}

// maximizationPlan compiles the §4.1.2 comparison: per attack setting, the
// analytic γ* (Proposition 3 on the sweep's implied C_Ψ) against the measured
// gain peak.
func maximizationPlan(scale experiments.Scale) (*figurePlan, error) {
	cfg := experiments.DefaultMaximizationStudyConfig()
	cfg.Gammas = scale.Gammas
	cfg.Warmup = scale.Warmup
	cfg.Measure = scale.Measure
	cfg.Seed = scale.Seed
	if len(cfg.Gammas) < 3 {
		return nil, errors.New("figures: maximization study needs a real gamma grid")
	}
	gridStep := 1.0
	for i := 1; i < len(cfg.Gammas); i++ {
		if step := cfg.Gammas[i] - cfg.Gammas[i-1]; step > 0 && step < gridStep {
			gridStep = step
		}
	}
	cs := &curveSet{}
	for _, st := range cfg.Settings {
		label := fmt.Sprintf("R=%.0fM Textent=%dms", st.Rate/1e6, st.Extent.Milliseconds())
		name := fmt.Sprintf("ext-maximization/rate=%.0fM/extent=%dms", st.Rate/1e6, st.Extent.Milliseconds())
		c, err := compileGainCurve(name,
			scenario.Topology{Kind: "dumbbell", Flows: cfg.Flows},
			scale, st.Rate, st.Extent, cfg.Gammas, cfg.Kappa)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		cs.add(label, c)
	}
	return &figurePlan{
		docs: cs.docs,
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			res := &experiments.FigureResult{
				ID:    "ext-maximization",
				Title: "analytic gamma* vs measured gain peak (§4.1.2)",
			}
			s := experiments.Series{Label: "measured peak vs analytic gamma*"}
			for i, label := range cs.labels {
				points, err := cs.points(arts, i)
				if err != nil {
					return nil, err
				}
				if len(points) == 0 {
					continue
				}
				peak, err := experiments.PeakPoint(points)
				if err != nil {
					return nil, err
				}
				cPsi := experiments.ImpliedCPsi(points)
				gammaStar := math.NaN()
				analyticPeak := 0.0
				if g, err := optimize.OptimalGamma(cPsi, cfg.Kappa); err == nil {
					gammaStar = g
					for _, p := range points {
						if p.AnalyticGain > analyticPeak {
							analyticPeak = p.AnalyticGain
						}
					}
				}
				s.Points = append(s.Points, experiments.Point{X: gammaStar, Y: peak.Gamma})
				note(res, "%s: gamma*=%.3f measured-peak=%.2f (±%.2f grid) gains %.3f/%.3f class=%s",
					label, gammaStar, peak.Gamma, gridStep,
					analyticPeak, peak.MeasuredGain, experiments.ClassifyGain(points, 0.05))
			}
			res.Series = append(res.Series, s)
			return res, nil
		},
	}, nil
}
