package figures_test

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/figures"
	"pulsedos/internal/runcache"
)

// equivalenceScale shrinks every dimension so the full legacy-vs-scenario
// comparison stays fast enough for -race CI runs. Three gammas keep the
// maximization study's grid guard satisfied.
func equivalenceScale() experiments.Scale {
	return experiments.Scale{
		Warmup:       2 * time.Second,
		Measure:      3 * time.Second,
		SyncDuration: 4 * time.Second,
		Gammas:       []float64{0.3, 0.5, 0.8},
		FlowCounts:   []int{4},
		ScaleFlows:   []int{50},
		Seed:         1,
		Parallel:     runtime.NumCPU(),
	}
}

// legacyJobs indexes the legacy drivers by figure ID.
func legacyJobs(t *testing.T) map[string]func(experiments.Scale) (*experiments.FigureResult, error) {
	t.Helper()
	out := map[string]func(experiments.Scale) (*experiments.FigureResult, error){}
	for _, job := range append(experiments.PaperFigures(), experiments.ExtendedFigures()...) {
		out[job.ID] = job.Build
	}
	return out
}

// TestFigureEquivalence is the migration contract: every figure regenerated
// through the scenario-native pipeline — documents, cached artifacts, decode,
// assemble — must equal the legacy driver's FigureResult byte for byte. The
// comparison uses %#v, whose shortest-round-trip float formatting makes it
// exact (and NaN-safe, unlike JSON: the maximization figure's AnalyticGammaStar
// is NaN when no analytic optimum exists).
func TestFigureEquivalence(t *testing.T) {
	scale := equivalenceScale()
	legacy := legacyJobs(t)
	store, err := runcache.Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	opt := figures.Options{Cache: store, Parallel: scale.Parallel}
	for _, id := range figures.IDs() {
		if id == "scale" {
			// The scaling sweep delegates to the same ScaleFigure on both
			// sides (its observables include wall-clock timings a document
			// cannot cache); running it twice here proves nothing.
			continue
		}
		id := id
		t.Run(id, func(t *testing.T) {
			build, ok := legacy[id]
			if !ok {
				t.Fatalf("no legacy driver for %s", id)
			}
			want, err := build(scale)
			if err != nil {
				t.Fatalf("legacy %s: %v", id, err)
			}
			got, err := figures.Run(context.Background(), id, scale, opt)
			if err != nil {
				t.Fatalf("figures.Run(%s): %v", id, err)
			}
			a, b := fmt.Sprintf("%#v", want), fmt.Sprintf("%#v", got)
			if a != b {
				t.Errorf("figure %s diverged from legacy driver\nlegacy: %s\nnew:    %s", id, a, b)
			}
		})
	}
}

// TestAllFiguresWarmCache asserts the pipeline's replay property: a second
// AllFigures pass at the same scale computes nothing — every expanded point
// is served from the content-addressed cache.
func TestAllFiguresWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("QuickScale figure sweep in -short mode")
	}
	store, err := runcache.Open(t.TempDir(), 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	scale := experiments.QuickScale()
	scale.Parallel = runtime.NumCPU()
	opt := figures.Options{Cache: store, Parallel: scale.Parallel}

	cold, err := figures.AllFigures(context.Background(), scale, opt)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := store.Stats()
	if coldStats.Misses == 0 {
		t.Fatal("cold run computed nothing — cache keys are not reaching the store")
	}

	warm, err := figures.AllFigures(context.Background(), scale, opt)
	if err != nil {
		t.Fatal(err)
	}
	warmStats := store.Stats()
	if d := warmStats.Misses - coldStats.Misses; d != 0 {
		t.Errorf("warm run recomputed %d points; want 0", d)
	}
	lookups := (warmStats.Hits - coldStats.Hits) + (warmStats.Misses - coldStats.Misses)
	if lookups == 0 {
		t.Fatal("warm run performed no cache lookups")
	}
	if hitFrac := float64(warmStats.Hits-coldStats.Hits) / float64(lookups); hitFrac < 0.9 {
		t.Errorf("warm run hit fraction %.2f; want >= 0.90", hitFrac)
	}

	if len(cold) != len(warm) {
		t.Fatalf("cold run produced %d figures, warm %d", len(cold), len(warm))
	}
	for i := range cold {
		if a, b := fmt.Sprintf("%#v", cold[i]), fmt.Sprintf("%#v", warm[i]); a != b {
			t.Errorf("figure %s: warm replay diverged from cold run", cold[i].ID)
		}
	}
}

// TestDocumentsAreSelfContained: every compiled document must validate and
// expand on its own — the property that lets a figure be shipped to
// pdos-serve's batch endpoint without the figures package on the other side.
func TestDocumentsAreSelfContained(t *testing.T) {
	scale := equivalenceScale()
	for _, id := range figures.IDs() {
		docs, err := figures.Documents(id, scale)
		if err != nil {
			t.Fatalf("Documents(%s): %v", id, err)
		}
		for _, d := range docs {
			if d.Name == "" {
				t.Errorf("%s: document without a name", id)
			}
			pts, err := d.Expand()
			if err != nil {
				t.Errorf("%s: document %s does not expand: %v", id, d.Name, err)
				continue
			}
			for _, pt := range pts {
				if err := pt.Validate(); err != nil {
					t.Errorf("%s: expanded point %s invalid: %v", id, pt.Name, err)
				}
			}
		}
	}
}

// TestRunRequiresSeed pins the seed-zero guard: the legacy drivers stamp
// Scale.Seed into every topology unconditionally, while a scenario document
// treats seed 0 as "kind default" — so a zero seed cannot be represented
// equivalently and must be rejected.
func TestRunRequiresSeed(t *testing.T) {
	scale := equivalenceScale()
	scale.Seed = 0
	if _, err := figures.Run(context.Background(), "fig2", scale, figures.Options{}); err == nil {
		t.Fatal("Run with zero seed succeeded; want error")
	}
	// Analytic figures run no simulation and need no seed.
	if _, err := figures.Run(context.Background(), "fig4", scale, figures.Options{}); err != nil {
		t.Fatalf("analytic figure rejected zero seed: %v", err)
	}
}

// TestUnknownFigure pins the lookup error.
func TestUnknownFigure(t *testing.T) {
	_, err := figures.Run(context.Background(), "fig99", equivalenceScale(), figures.Options{})
	if err == nil {
		t.Fatal("unknown figure succeeded")
	}
	if want := `figures: unknown figure "fig99"`; err.Error() != want {
		t.Fatalf("error %q; want %q", err, want)
	}
}
