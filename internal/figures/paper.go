package figures

import (
	"fmt"

	"pulsedos/internal/experiments"
	"pulsedos/internal/scenario"
)

// fig1Plan compiles the cwnd sawtooth of Fig. 1: one victim flow at a fixed
// 100 ms RTT under a fixed-period AIMD attack, observed through the "cwnd"
// tap.
func fig1Plan(scale experiments.Scale) (*figurePlan, error) {
	doc := scenario.Config{
		Name: "fig1",
		Topology: scenario.Topology{
			Kind:     "dumbbell",
			Flows:    1,
			RTTMinMs: ms(experiments.Fig1RTT),
			RTTMaxMs: ms(experiments.Fig1RTT),
		},
		Attack: &scenario.Attack{
			Kind:     "aimd",
			RateMbps: experiments.Fig1Rate / 1e6,
			ExtentMs: ms(experiments.Fig1Extent),
			PeriodMs: ms(experiments.Fig1Period),
		},
		Measure:    &scenario.Measure{Taps: []string{"cwnd"}},
		WarmupSec:  scale.Warmup.Seconds(),
		MeasureSec: scale.Measure.Seconds(),
		Seed:       scale.Seed,
	}
	env, err := doc.Build()
	if err != nil {
		return nil, err
	}
	params := env.ModelParams()
	if cl, ok := env.(interface{ Close() }); ok {
		cl.Close()
	}
	return &figurePlan{
		docs: []scenario.Config{doc},
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			samples, err := decodeCwnd(arts[0][0])
			if err != nil {
				return nil, err
			}
			res := &experiments.FigureResult{ID: "fig1", Title: "cwnd under fixed-period AIMD attack"}
			s := experiments.Series{Label: "cwnd"}
			for _, smp := range experiments.ResampleCwnd(samples, 0.05, (scale.Warmup + scale.Measure).Seconds()) {
				s.Points = append(s.Points, experiments.Point{X: smp.TimeSec, Y: smp.Cwnd})
			}
			res.Series = append(res.Series, s)

			wc := params.ConvergedWindow(experiments.Fig1Period.Seconds(), experiments.Fig1RTT.Seconds())
			note(res, "analytic converged window Wc = %.2f segments (Eq. 1) at T_AIMD = %v",
				wc, experiments.Fig1Period)
			// Mean cwnd over the attacked steady half of the trace.
			var sum float64
			var n int
			for _, smp := range samples {
				if smp.TimeSec > (scale.Warmup + scale.Measure/2).Seconds() {
					sum += smp.Cwnd
					n++
				}
			}
			if n > 0 {
				note(res, "measured steady-phase mean cwnd = %.2f segments", sum/float64(n))
			}
			return res, nil
		},
	}, nil
}

// fig2Plan compiles the periodic incoming-traffic pattern of Fig. 2 from the
// binned rate series.
func fig2Plan(scale experiments.Scale) (*figurePlan, error) {
	doc := scenario.Config{
		Name:     "fig2",
		Topology: scenario.Topology{Kind: "dumbbell", Flows: 15},
		Attack: &scenario.Attack{
			Kind:     "aimd",
			RateMbps: experiments.Fig2Rate / 1e6,
			ExtentMs: ms(experiments.Fig2Extent),
			PeriodMs: ms(experiments.Fig2Period),
		},
		WarmupSec:  scale.Warmup.Seconds(),
		MeasureSec: scale.Measure.Seconds(),
		RateBinMs:  ms(experiments.Fig2RateBin),
		Seed:       scale.Seed,
	}
	return &figurePlan{
		docs: []scenario.Config{doc},
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			sum, err := decodeSummary(arts[0][0])
			if err != nil {
				return nil, err
			}
			bins, err := decodeRate(arts[0][0])
			if err != nil {
				return nil, err
			}
			res := &experiments.FigureResult{ID: "fig2", Title: "periodic incoming traffic during a PDoS attack"}
			s := experiments.Series{Label: "incoming rate (bps)"}
			for i, b := range bins {
				s.Points = append(s.Points, experiments.Point{X: float64(i) * 0.05, Y: b * 8 / sum.RateBinSec})
			}
			res.Series = append(res.Series, s)
			note(res, "attack period T_AIMD = %v; expect rate peaks every period", experiments.Fig2Period)
			return res, nil
		},
	}, nil
}

// syncPlan compiles a Fig. 3 synchronization panel: a long attacked snapshot
// with the "sync" tap carrying the §2.3 PAA post-processing.
func syncPlan(id, title string, top scenario.Topology, st experiments.SyncSetting, scale experiments.Scale) (*figurePlan, error) {
	period := st.Extent + st.Space
	frames := int(scale.SyncDuration / experiments.SyncFrameStep)
	doc := scenario.Config{
		Name:     id,
		Topology: top,
		Attack: &scenario.Attack{
			Kind:     "aimd",
			RateMbps: st.Rate / 1e6,
			ExtentMs: ms(st.Extent),
			PeriodMs: ms(period),
		},
		Measure:    &scenario.Measure{Taps: []string{"sync"}, SyncFrames: frames},
		WarmupSec:  scale.Warmup.Seconds(),
		MeasureSec: scale.SyncDuration.Seconds(),
		RateBinMs:  ms(experiments.SyncRateBin),
		Seed:       scale.Seed,
	}
	return &figurePlan{
		docs: []scenario.Config{doc},
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			sync, err := decodeSync(arts[0][0])
			if err != nil {
				return nil, err
			}
			res := &experiments.FigureResult{ID: id, Title: title}
			s := experiments.Series{Label: "normalized PAA incoming traffic"}
			frameSec := scale.SyncDuration.Seconds() / float64(len(sync.Frames))
			for i, v := range sync.Frames {
				s.Points = append(s.Points, experiments.Point{X: float64(i) * frameSec, Y: v})
			}
			res.Series = append(res.Series, s)
			note(res, "attack period T_AIMD = %v", period)
			note(res, "pinnacles counted: %d over %.0f s => period %.2f s (paper counts duration/T_AIMD)",
				sync.Peaks, scale.SyncDuration.Seconds(), sync.PeakPeriodSec)
			if sync.AutoPeriodSec > 0 {
				note(res, "autocorrelation period estimate: %.2f s", sync.AutoPeriodSec)
			}
			return res, nil
		},
	}, nil
}

// fig3aPlan compiles the ns-2 synchronization snapshot (24 dumbbell flows).
func fig3aPlan(scale experiments.Scale) (*figurePlan, error) {
	st := experiments.Fig3aSetting()
	return syncPlan("fig3a", "quasi-global synchronization (ns-2 dumbbell)",
		scenario.Topology{Kind: "dumbbell", Flows: st.Flows}, st, scale)
}

// fig3bPlan compiles the test-bed synchronization snapshot (15 flows).
func fig3bPlan(scale experiments.Scale) (*figurePlan, error) {
	st := experiments.Fig3bSetting()
	return syncPlan("fig3b", "quasi-global synchronization (test-bed)",
		scenario.Topology{Kind: "testbed", Flows: st.Flows}, st, scale)
}

// fig10Plan compiles the shrew-resonance study: the three paper settings with
// the γ grid augmented by the exact minRTO/n harmonics.
func fig10Plan(scale experiments.Scale) (*figurePlan, error) {
	bottleneck := experiments.DefaultDumbbellConfig(15).BottleneckRate
	cs := &curveSet{}
	for _, st := range experiments.ShrewFigureSettings() {
		label := fmt.Sprintf("R=%.0fM Textent=%dms", st.Rate/1e6, st.Extent.Milliseconds())
		gammas := append(append([]float64(nil), scale.Gammas...),
			experiments.ShrewGammas(st.Rate, st.Extent, bottleneck,
				experiments.ShrewFigureMinRTO, experiments.ShrewFigureMaxHarmonic)...)
		name := fmt.Sprintf("fig10/rate=%.0fM/extent=%dms", st.Rate/1e6, st.Extent.Milliseconds())
		c, err := compileGainCurve(name,
			scenario.Topology{Kind: "dumbbell", Flows: 15},
			scale, st.Rate, st.Extent, gammas, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		cs.add(label, c)
	}
	return &figurePlan{
		docs: cs.docs,
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			res := &experiments.FigureResult{ID: "fig10", Title: "PDoS attacks vs shrew resonances"}
			for i, label := range cs.labels {
				points, err := cs.points(arts, i)
				if err != nil {
					return nil, fmt.Errorf("fig10 %s: %w", label, err)
				}
				analytic := experiments.Series{Label: label + " analytic"}
				measured := experiments.Series{Label: label + " measured"}
				shrew := experiments.Series{Label: label + " shrew-points"}
				for _, p := range points {
					analytic.Points = append(analytic.Points, experiments.Point{X: p.Gamma, Y: p.AnalyticGain})
					measured.Points = append(measured.Points, experiments.Point{X: p.Gamma, Y: p.MeasuredGain})
					harmonic, ok := experiments.ShrewHarmonic(p.PeriodSec,
						experiments.ShrewFigureMinRTO, experiments.ShrewFigureMaxHarmonic, 0.08)
					if ok {
						shrew.Points = append(shrew.Points, experiments.Point{X: p.Gamma, Y: p.MeasuredGain})
						note(res, "%s: shrew point T_AIMD=%.3fs (minRTO/%d): measured %.3f vs analytic %.3f",
							label, p.PeriodSec, harmonic, p.MeasuredGain, p.AnalyticGain)
					}
				}
				res.Series = append(res.Series, analytic, measured, shrew)
			}
			return res, nil
		},
	}, nil
}

// fig12Plan compiles the test-bed gain curves: 10 flows, T_extent = 150 ms,
// one curve per attack rate.
func fig12Plan(scale experiments.Scale) (*figurePlan, error) {
	cs := &curveSet{}
	for _, rate := range experiments.TestbedFigureRates() {
		label := fmt.Sprintf("R=%.0fM", rate/1e6)
		name := fmt.Sprintf("fig12/rate=%.0fM", rate/1e6)
		c, err := compileGainCurve(name,
			scenario.Topology{Kind: "testbed", Flows: experiments.TestbedFigureFlows},
			scale, rate, experiments.TestbedFigureExtent, scale.Gammas, 1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", label, err)
		}
		cs.add(label, c)
	}
	return &figurePlan{
		docs: cs.docs,
		assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
			res := &experiments.FigureResult{ID: "fig12", Title: "test-bed attack gain vs gamma"}
			for i, label := range cs.labels {
				points, err := cs.points(arts, i)
				if err != nil {
					return nil, fmt.Errorf("fig12 %s: %w", label, err)
				}
				analytic, measured := experiments.GainSeries(label, points)
				res.Series = append(res.Series, analytic, measured)
				peak, err := experiments.PeakPoint(points)
				if err != nil {
					return nil, err
				}
				note(res, "%s: class=%s, measured peak gain %.3f at gamma=%.2f",
					label, experiments.ClassifyGain(points, 0.05), peak.MeasuredGain, peak.Gamma)
			}
			return res, nil
		},
	}, nil
}
