package figures

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"pulsedos/internal/experiments"
	"pulsedos/internal/scenario"
)

// The decoders reverse internal/scenario's artifact encodings. Both sides use
// exact float representations (JSON and strconv shortest round-trip form), so
// a figure assembled from decoded artifacts is bit-identical to one assembled
// from the in-memory RunResult.

// artifact fetches one named file from a point's artifact set.
func artifact(files Artifacts, name string) ([]byte, error) {
	buf, ok := files[name]
	if !ok {
		return nil, fmt.Errorf("figures: artifact %s missing", name)
	}
	return buf, nil
}

// decodeSummary decodes result.json.
func decodeSummary(files Artifacts) (*scenario.RunSummary, error) {
	buf, err := artifact(files, scenario.ArtifactResult)
	if err != nil {
		return nil, err
	}
	var sum scenario.RunSummary
	if err := json.Unmarshal(buf, &sum); err != nil {
		return nil, fmt.Errorf("figures: decode %s: %w", scenario.ArtifactResult, err)
	}
	return &sum, nil
}

// decodeSRTT decodes the "srtt" tap's per-flow smoothed-RTT vector.
func decodeSRTT(files Artifacts) ([]float64, error) {
	buf, err := artifact(files, scenario.ArtifactSRTT)
	if err != nil {
		return nil, err
	}
	var srtts []float64
	if err := json.Unmarshal(buf, &srtts); err != nil {
		return nil, fmt.Errorf("figures: decode %s: %w", scenario.ArtifactSRTT, err)
	}
	return srtts, nil
}

// decodeSync decodes the "sync" tap's PAA frames and period estimates.
func decodeSync(files Artifacts) (*scenario.SyncArtifact, error) {
	buf, err := artifact(files, scenario.ArtifactSync)
	if err != nil {
		return nil, err
	}
	var art scenario.SyncArtifact
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("figures: decode %s: %w", scenario.ArtifactSync, err)
	}
	return &art, nil
}

// decodeMice decodes the mice workload's FCT summary.
func decodeMice(files Artifacts) (*scenario.MiceArtifact, error) {
	buf, err := artifact(files, scenario.ArtifactMice)
	if err != nil {
		return nil, err
	}
	var art scenario.MiceArtifact
	if err := json.Unmarshal(buf, &art); err != nil {
		return nil, fmt.Errorf("figures: decode %s: %w", scenario.ArtifactMice, err)
	}
	return &art, nil
}

// decodeCwnd decodes the "cwnd" tap's trace (timeSec,cwnd rows).
func decodeCwnd(files Artifacts) ([]experiments.CwndSample, error) {
	rows, err := csvRows(files, scenario.ArtifactCwnd, "timeSec,cwnd")
	if err != nil {
		return nil, err
	}
	out := make([]experiments.CwndSample, len(rows))
	for i, r := range rows {
		out[i] = experiments.CwndSample{TimeSec: r[0], Cwnd: r[1]}
	}
	return out, nil
}

// decodeRate decodes rate.csv's per-bin byte counts (the binStartSec column
// is derivable and dropped).
func decodeRate(files Artifacts) ([]float64, error) {
	rows, err := csvRows(files, scenario.ArtifactRate, "binStartSec,bytes")
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rows))
	for i, r := range rows {
		out[i] = r[1]
	}
	return out, nil
}

// csvRows parses a two-column float CSV artifact, checking its header.
func csvRows(files Artifacts, name, header string) ([][2]float64, error) {
	buf, err := artifact(files, name)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(buf), "\n")
	if len(lines) == 0 || lines[0] != header {
		return nil, fmt.Errorf("figures: %s: want header %q", name, header)
	}
	var out [][2]float64
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		a, b, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("figures: %s: malformed row %q", name, line)
		}
		x, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("figures: %s: %w", name, err)
		}
		y, err := strconv.ParseFloat(b, 64)
		if err != nil {
			return nil, fmt.Errorf("figures: %s: %w", name, err)
		}
		out = append(out, [2]float64{x, y})
	}
	return out, nil
}
