package figures

import (
	"errors"
	"fmt"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/model"
	"pulsedos/internal/scenario"
)

// ms renders a duration in fractional milliseconds — the unit scenario
// documents speak. Every paper duration is a whole number of microseconds,
// so the conversion (and the document's reverse one) is float-exact.
func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// gainCurve is one Figs. 6–10 / Fig. 12 curve compiled to documents: a
// no-attack baseline carrying the "srtt" calibration tap, and (when any grid
// point is feasible) a gamma-sweep carrier whose expanded points are plain
// attacked documents. Its points() reproduces experiments.GainSweep's exact
// arithmetic — baseline SRTT calibration, C_Ψ, per-point degradations and
// gains — from the artifacts alone.
type gainCurve struct {
	rate   float64
	extent time.Duration
	kappa  float64

	base  scenario.Config
	sweep *scenario.Config

	params model.Params
	toCfg  model.TimeoutModelConfig
}

// compileGainCurve resolves the curve's documents against the topology. It
// builds one throwaway environment to read the analytic parameters (the same
// values every expanded point's own build will see), then filters the γ grid
// to the feasible points exactly as GainSweep does: a period shorter than the
// pulse means γ is unreachable and the point is skipped.
func compileGainCurve(
	name string,
	top scenario.Topology,
	scale experiments.Scale,
	rate float64,
	extent time.Duration,
	gammas []float64,
	kappa float64,
) (*gainCurve, error) {
	c := &gainCurve{rate: rate, extent: extent, kappa: kappa}
	c.base = scenario.Config{
		Name:       name + "/baseline",
		Topology:   top,
		Measure:    &scenario.Measure{Taps: []string{"srtt"}},
		WarmupSec:  scale.Warmup.Seconds(),
		MeasureSec: scale.Measure.Seconds(),
		Seed:       scale.Seed,
	}
	env, err := c.base.Build()
	if err != nil {
		return nil, err
	}
	c.params = env.ModelParams()
	c.toCfg = env.TimeoutModel()
	if cl, ok := env.(interface{ Close() }); ok {
		cl.Close()
	}

	feasible := make([]float64, 0, len(gammas))
	for _, g := range gammas {
		if g <= 0 || g >= 1 {
			return nil, fmt.Errorf("figures: gamma %g outside (0,1)", g)
		}
		if experiments.PeriodForGamma(g, rate, extent, c.params.Bottleneck) < extent {
			continue
		}
		feasible = append(feasible, g)
	}
	if len(feasible) > 0 {
		sw := c.base
		sw.Name = name
		sw.Attack = &scenario.Attack{Kind: "aimd", RateMbps: rate / 1e6, ExtentMs: ms(extent)}
		// The sweep carrier drops the calibration tap: expanded attack points
		// are plain documents (result.json only), so they share cache entries
		// with any other figure — or serve-submitted scenario — probing the
		// same physics.
		sw.Measure = &scenario.Measure{Sweep: &scenario.Sweep{Axis: "gamma", Values: feasible}}
		c.sweep = &sw
	}
	return c, nil
}

// docs returns the curve's documents in submission order.
func (c *gainCurve) docs() []scenario.Config {
	if c.sweep == nil {
		return []scenario.Config{c.base}
	}
	return []scenario.Config{c.base, *c.sweep}
}

// points folds the curve's artifacts into GainPoints, replicating GainSweep:
// calibrate the model RTTs with the baseline's measured SRTTs, derive C_Ψ,
// then per grid point compute the measured and analytic degradations/gains.
func (c *gainCurve) points(arts [][]Artifacts) ([]experiments.GainPoint, error) {
	base, err := decodeSummary(arts[0][0])
	if err != nil {
		return nil, err
	}
	srtts, err := decodeSRTT(arts[0][0])
	if err != nil {
		return nil, err
	}
	params := c.params
	params.RTTs = append([]float64(nil), params.RTTs...)
	for i, srtt := range srtts {
		if i >= len(params.RTTs) {
			break
		}
		if srtt > params.RTTs[i] {
			params.RTTs[i] = srtt
		}
	}
	baseline := float64(base.Delivered)
	if baseline == 0 {
		return nil, errors.New("figures: baseline delivered zero bytes; widen the window")
	}
	cPsi := params.CPsi(c.extent.Seconds(), c.rate)

	if c.sweep == nil {
		return []experiments.GainPoint{}, nil
	}
	gammas := c.sweep.Measure.Sweep.Values
	points := make([]experiments.GainPoint, len(gammas))
	for i, gamma := range gammas {
		sum, err := decodeSummary(arts[1][i])
		if err != nil {
			return nil, err
		}
		period := experiments.PeriodForGamma(gamma, c.rate, c.extent, c.params.Bottleneck)
		measuredDeg := 1 - float64(sum.Delivered)/baseline
		if measuredDeg < 0 {
			measuredDeg = 0
		}
		combinedDeg, err := params.CombinedDegradation(
			c.extent.Seconds(), c.rate, period.Seconds(), c.toCfg)
		if err != nil {
			// The TO extension is advisory: fall back to the FR-state estimate.
			combinedDeg = model.Degradation(cPsi, gamma)
		}
		points[i] = experiments.GainPoint{
			Gamma:               gamma,
			PeriodSec:           period.Seconds(),
			AnalyticDegradation: model.Degradation(cPsi, gamma),
			MeasuredDegradation: measuredDeg,
			AnalyticGain:        model.Gain(cPsi, gamma, c.kappa),
			MeasuredGain:        measuredDeg * model.RiskFactor(gamma, c.kappa),
			CombinedDegradation: combinedDeg,
			CombinedGain:        combinedDeg * model.RiskFactor(gamma, c.kappa),
			Timeouts:            sum.Timeouts,
			FastRecoveries:      sum.FastRecoveries,
		}
	}
	return points, nil
}

// curveSet collects labelled curves and tracks where each one's documents
// land in the flattened submission list.
type curveSet struct {
	labels []string
	curves []*gainCurve
	starts []int
	docs   []scenario.Config
}

func (cs *curveSet) add(label string, c *gainCurve) {
	cs.labels = append(cs.labels, label)
	cs.curves = append(cs.curves, c)
	cs.starts = append(cs.starts, len(cs.docs))
	cs.docs = append(cs.docs, c.docs()...)
}

// points assembles curve i from the full artifact list.
func (cs *curveSet) points(arts [][]Artifacts, i int) ([]experiments.GainPoint, error) {
	start := cs.starts[i]
	return cs.curves[i].points(arts[start : start+len(cs.curves[i].docs())])
}

// note appends a formatted summary row to a figure.
func note(res *experiments.FigureResult, format string, args ...any) {
	res.Notes = append(res.Notes, fmt.Sprintf(format, args...))
}

// gainFigurePlan compiles one of Figs. 6–9: gain-vs-γ curves for each flow
// count and pulse width at the given attack rate.
func gainFigurePlan(id string, rate float64) func(experiments.Scale) (*figurePlan, error) {
	return func(scale experiments.Scale) (*figurePlan, error) {
		cs := &curveSet{}
		for _, flows := range scale.FlowCounts {
			for _, extent := range experiments.GainFigureExtents() {
				label := fmt.Sprintf("flows=%d Textent=%dms", flows, extent.Milliseconds())
				name := fmt.Sprintf("%s/flows=%d/extent=%dms", id, flows, extent.Milliseconds())
				c, err := compileGainCurve(name,
					scenario.Topology{Kind: "dumbbell", Flows: flows},
					scale, rate, extent, scale.Gammas, 1)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", label, err)
				}
				cs.add(label, c)
			}
		}
		return &figurePlan{
			docs: cs.docs,
			assemble: func(arts [][]Artifacts) (*experiments.FigureResult, error) {
				res := &experiments.FigureResult{
					ID:    id,
					Title: fmt.Sprintf("attack gain vs gamma, R_attack = %.0f Mbps", rate/1e6),
				}
				for i, label := range cs.labels {
					points, err := cs.points(arts, i)
					if err != nil {
						return nil, fmt.Errorf("%s %s: %w", id, label, err)
					}
					analytic, measured := experiments.GainSeries(label, points)
					res.Series = append(res.Series, analytic, measured)

					peak, err := experiments.PeakPoint(points)
					if err != nil {
						return nil, err
					}
					note(res, "%s: class=%s, measured peak gain %.3f at gamma=%.2f",
						label, experiments.ClassifyGain(points, 0.05), peak.MeasuredGain, peak.Gamma)
				}
				return res, nil
			},
		}, nil
	}
}
