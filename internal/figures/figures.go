// Package figures regenerates the paper's figures through the one
// scenario-native execution path: every figure is compiled into declarative
// scenario documents (base Config + measurement taps + sweep axis), each
// expanded point runs through scenario.Config → experiments.RunCtx, and the
// resulting artifacts are memoized in the content-addressed run cache under
// scenario.Key. The figure itself is then assembled from artifacts alone —
// pure arithmetic over result.json, srtt.json, sync.json, and friends — so a
// warm cache replays an entire AllFigures sweep without touching a kernel.
//
// The legacy drivers in internal/experiments survive one release as the
// fixed side of a byte-identity equivalence contract: for every migrated
// figure, the FigureResult assembled here equals the legacy driver's output
// bit for bit (TestFigureEquivalence). Both sides draw their fixed dimensions
// from the same experiments/dims.go definitions, so they cannot drift apart
// silently.
package figures

import (
	"context"
	"errors"
	"fmt"

	"pulsedos/internal/experiments"
	"pulsedos/internal/runcache"
	"pulsedos/internal/scenario"
)

// Artifacts is one run's encoded artifact set, keyed by artifact file name.
type Artifacts = map[string][]byte

// Options parameterizes figure execution.
type Options struct {
	// Cache, when non-nil, memoizes every expanded point under its
	// scenario.Key: a point whose key is cached replays from disk instead of
	// rebuilding its kernel, and concurrent identical points (the shared
	// no-attack baselines of Figs. 6–9) collapse into one compute via the
	// store's singleflight. Nil computes every point directly.
	Cache *runcache.Store

	// Parallel bounds the number of points simulated concurrently (each on a
	// private kernel, so results are identical at any worker count). 0 or 1
	// runs sequentially.
	Parallel int
}

// figurePlan is one figure compiled against a scale: the scenario documents
// to execute (possibly sweep carriers) and the pure assembly step that folds
// their point artifacts back into the figure.
type figurePlan struct {
	docs     []scenario.Config
	assemble func(arts [][]Artifacts) (*experiments.FigureResult, error)
}

// Def is one registered figure. Simulation-backed figures carry a plan
// compiler; analytic figures (pure math, nothing to run or cache) compute
// directly.
type Def struct {
	ID string

	plan   func(scale experiments.Scale) (*figurePlan, error)
	direct func(scale experiments.Scale) (*experiments.FigureResult, error)
}

// Analytic reports whether the figure runs no simulation (and therefore
// produces no cacheable documents).
func (d Def) Analytic() bool { return d.plan == nil }

// Registry returns every figure definition: the paper's plots in paper
// order, then the ablations and extension studies.
func Registry() []Def {
	return []Def{
		{ID: "fig1", plan: fig1Plan},
		{ID: "fig2", plan: fig2Plan},
		{ID: "fig3a", plan: fig3aPlan},
		{ID: "fig3b", plan: fig3bPlan},
		{ID: "fig4", direct: experiments.Figure4},
		{ID: "fig6", plan: gainFigurePlan("fig6", experiments.GainFigureRates()[0])},
		{ID: "fig7", plan: gainFigurePlan("fig7", experiments.GainFigureRates()[1])},
		{ID: "fig8", plan: gainFigurePlan("fig8", experiments.GainFigureRates()[2])},
		{ID: "fig9", plan: gainFigurePlan("fig9", experiments.GainFigureRates()[3])},
		{ID: "fig10", plan: fig10Plan},
		{ID: "fig12", plan: fig12Plan},
		{ID: "prop3", direct: func(experiments.Scale) (*experiments.FigureResult, error) {
			return experiments.OptimalityCheck()
		}},
		{ID: "ablation-aqm", plan: aqmPlan},
		{ID: "ablation-dack", plan: dackPlan},
		{ID: "ablation-aimd", plan: aimdPlan},
		{ID: "ablation-pktsize", plan: pktsizePlan},
		{ID: "ext-defense", plan: defensePlan},
		{ID: "ext-mice", plan: micePlan},
		{ID: "ext-maximization", plan: maximizationPlan},
		{ID: "ext-sensitivity", direct: experiments.SensitivityFigure},
		// The scaling sweep is a performance study, not a paper figure; it
		// keeps its own pipeline (experiments.ScaleSweep with per-point
		// ScaleKey caching) because its observables include wall-clock and
		// allocation metrics a scenario document deliberately cannot express.
		{ID: "scale", direct: experiments.ScaleFigure},
	}
}

// paperCount is the number of leading Registry entries that form the paper
// set (Figs. 1–4, 6–10, 12, and the Proposition 3 cross-check).
const paperCount = 12

// IDs returns every registered figure ID, registry order.
func IDs() []string {
	defs := Registry()
	out := make([]string, len(defs))
	for i, d := range defs {
		out[i] = d.ID
	}
	return out
}

// lookup resolves one figure definition by ID.
func lookup(id string) (Def, error) {
	for _, d := range Registry() {
		if d.ID == id {
			return d, nil
		}
	}
	return Def{}, fmt.Errorf("figures: unknown figure %q", id)
}

// Documents compiles one figure into its scenario documents without running
// anything: the exact configs Run would execute, sweep carriers included, in
// submission order. Analytic figures compile to an empty set. The documents
// are self-contained, so they can be POSTed to pdos-serve's batch endpoint
// and the figure assembled remotely.
func Documents(id string, scale experiments.Scale) ([]scenario.Config, error) {
	def, err := lookup(id)
	if err != nil {
		return nil, err
	}
	if def.plan == nil {
		return nil, nil
	}
	p, err := def.plan(scale)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return p.docs, nil
}

// Run regenerates one figure: compile to documents, execute every expanded
// point through the cache, assemble the figure from artifacts.
func Run(ctx context.Context, id string, scale experiments.Scale, opt Options) (*experiments.FigureResult, error) {
	def, err := lookup(id)
	if err != nil {
		return nil, err
	}
	fig, err := run(ctx, def, scale, opt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return fig, nil
}

func run(ctx context.Context, def Def, scale experiments.Scale, opt Options) (*experiments.FigureResult, error) {
	if def.plan == nil {
		return def.direct(scale)
	}
	if scale.Seed == 0 {
		// The legacy drivers stamp scale.Seed into every topology config
		// unconditionally; a scenario document treats seed 0 as "kind
		// default". Requiring a nonzero seed keeps the two sides identical.
		return nil, errors.New("figures: scale needs a nonzero seed")
	}
	p, err := def.plan(scale)
	if err != nil {
		return nil, err
	}
	arts, err := runDocs(ctx, p.docs, opt)
	if err != nil {
		return nil, err
	}
	return p.assemble(arts)
}

// RunJobs regenerates the given figures in order, sequentially; parallelism
// lives at the point level (Options.Parallel), where the work actually is.
func RunJobs(ctx context.Context, ids []string, scale experiments.Scale, opt Options) ([]*experiments.FigureResult, error) {
	out := make([]*experiments.FigureResult, 0, len(ids))
	for _, id := range ids {
		fig, err := Run(ctx, id, scale, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

// AllFigures regenerates the paper figures at the given scale, paper order —
// the scenario-native counterpart of experiments.AllFigures.
func AllFigures(ctx context.Context, scale experiments.Scale, opt Options) ([]*experiments.FigureResult, error) {
	return RunJobs(ctx, IDs()[:paperCount], scale, opt)
}

// ExtendedFigures regenerates the ablation and extension studies.
func ExtendedFigures(ctx context.Context, scale experiments.Scale, opt Options) ([]*experiments.FigureResult, error) {
	return RunJobs(ctx, IDs()[paperCount:], scale, opt)
}

// runDocs executes every document's expanded points — flattened into one
// task pool so curve boundaries don't serialize — and returns the artifact
// sets grouped per document, point order.
func runDocs(ctx context.Context, docs []scenario.Config, opt Options) ([][]Artifacts, error) {
	type ref struct {
		doc, pt int
		cfg     scenario.Config
	}
	var pts []ref
	out := make([][]Artifacts, len(docs))
	for di, d := range docs {
		expanded, err := d.Expand()
		if err != nil {
			return nil, fmt.Errorf("figures: %s: %w", d.Name, err)
		}
		out[di] = make([]Artifacts, len(expanded))
		for pi, cfg := range expanded {
			pts = append(pts, ref{doc: di, pt: pi, cfg: cfg})
		}
	}
	err := experiments.RunTasksCtx(ctx, opt.Parallel, len(pts), func(i int) error {
		files, err := computePoint(ctx, pts[i].cfg, opt.Cache)
		if err != nil {
			return fmt.Errorf("figures: %s: %w", pts[i].cfg.Name, err)
		}
		out[pts[i].doc][pts[i].pt] = files
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// computePoint executes (or replays) one expanded point. The document's name
// is a label, not a parameter: it is stripped before keying and computing, so
// two figures that compile the same physics — a fig8 gain point and the
// ablation probing the same attack — share one cache entry with byte-identical
// artifacts, and the human-readable name survives only in the cache manifest.
func computePoint(ctx context.Context, cfg scenario.Config, cache *runcache.Store) (Artifacts, error) {
	label := cfg.Name
	cfg.Name = ""
	if cache == nil {
		return scenario.ComputeArtifacts(ctx, cfg, nil)
	}
	key, err := scenario.Key(cfg)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = "figure-point"
	}
	files, _, err := cache.GetOrCompute(key, label, experiments.EngineVersion, func() (map[string][]byte, error) {
		return scenario.ComputeArtifacts(ctx, cfg, nil)
	})
	return files, err
}
