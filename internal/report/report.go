// Package report renders experiment output as self-contained SVG charts and
// a single-page HTML report, stdlib-only. pdos-bench uses it to turn the
// regenerated figure series into something a reader can eyeball against the
// paper's plots.
package report

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"pulsedos/internal/experiments"
)

// palette cycles through visually distinct series colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#e377c2", "#17becf", "#bcbd22", "#7f7f7f",
}

// Chart describes one SVG plot.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels; default 640
	Height int // pixels; default 400
	Series []experiments.Series
}

// margins inside the SVG canvas.
const (
	marginLeft   = 64
	marginRight  = 16
	marginTop    = 36
	marginBottom = 48
)

// SVG renders the chart. Series whose label contains "measured" or whose
// point count is small are drawn as scatter markers; the rest as polylines.
func (c Chart) SVG() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 400
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`, w, h)
	b.WriteString("\n")
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14" font-weight="bold">%s</text>`+"\n",
			w/2, html.EscapeString(c.Title))
	}

	xMin, xMax, yMin, yMax, ok := c.bounds()
	if !ok {
		b.WriteString(`<text x="20" y="60">no data</text>` + "\n</svg>")
		return b.String()
	}
	plotW := float64(w - marginLeft - marginRight)
	plotH := float64(h - marginTop - marginBottom)
	px := func(x float64) float64 { return marginLeft + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return float64(h-marginBottom) - (y-yMin)/(yMax-yMin)*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, h-marginBottom, w-marginRight, h-marginBottom)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, h-marginBottom)

	// Ticks: five per axis.
	for i := 0; i <= 5; i++ {
		xv := xMin + (xMax-xMin)*float64(i)/5
		yv := yMin + (yMax-yMin)*float64(i)/5
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px(xv), h-marginBottom, px(xv), h-marginBottom+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			px(xv), h-marginBottom+18, formatTick(xv))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginLeft-4, py(yv), marginLeft, py(yv))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			marginLeft-7, py(yv), formatTick(yv))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginLeft+int(plotW)/2, h-8, html.EscapeString(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%d" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
			marginTop+int(plotH)/2, marginTop+int(plotH)/2, html.EscapeString(c.YLabel))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		if isScatter(s) {
			for _, p := range s.Points {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
					px(p.X), py(p.Y), color)
			}
		} else {
			var pts []string
			for _, p := range s.Points {
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(p.X), py(p.Y)))
			}
			fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
				color, strings.Join(pts, " "))
		}
		// Legend entry.
		ly := marginTop + 14*i
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			w-marginRight-170, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n",
			w-marginRight-155, ly+9, html.EscapeString(truncate(s.Label, 28)))
	}
	b.WriteString("</svg>")
	return b.String()
}

// bounds computes padded data bounds across all series.
func (c Chart) bounds() (xMin, xMax, yMin, yMax float64, ok bool) {
	xMin, yMin = math.Inf(1), math.Inf(1)
	xMax, yMax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
			ok = true
		}
	}
	if !ok {
		return 0, 0, 0, 0, false
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// 5% headroom on Y; anchor at zero when data is non-negative.
	pad := (yMax - yMin) * 0.05
	if yMin >= 0 && yMin <= pad {
		yMin = 0
	} else {
		yMin -= pad
	}
	yMax += pad
	return xMin, xMax, yMin, yMax, true
}

// isScatter decides marker vs line rendering.
func isScatter(s experiments.Series) bool {
	return strings.Contains(s.Label, "measured") ||
		strings.Contains(s.Label, "points") ||
		len(s.Points) <= 12
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 10 || v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}

// truncate caps a label for the legend.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// WriteHTML writes a single-page report: one chart per figure plus its notes.
func WriteHTML(w io.Writer, title string, figs []*experiments.FigureResult) error {
	if _, err := fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body { font-family: sans-serif; max-width: 960px; margin: 24px auto; color: #222; }
h2 { border-bottom: 1px solid #ccc; padding-bottom: 4px; margin-top: 36px; }
ul.notes { color: #444; font-size: 13px; }
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title)); err != nil {
		return err
	}
	for _, fig := range figs {
		if fig == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "<h2>%s — %s</h2>\n",
			html.EscapeString(fig.ID), html.EscapeString(fig.Title)); err != nil {
			return err
		}
		chart := Chart{Title: fig.ID, XLabel: xLabelFor(fig.ID), YLabel: yLabelFor(fig.ID), Series: fig.Series}
		if _, err := io.WriteString(w, chart.SVG()+"\n"); err != nil {
			return err
		}
		if len(fig.Notes) > 0 {
			if _, err := io.WriteString(w, `<ul class="notes">`+"\n"); err != nil {
				return err
			}
			for _, n := range fig.Notes {
				if _, err := fmt.Fprintf(w, "<li>%s</li>\n", html.EscapeString(n)); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "</ul>\n"); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "</body></html>\n")
	return err
}

// xLabelFor/yLabelFor pick axis labels by figure family.
func xLabelFor(id string) string {
	switch {
	case strings.HasPrefix(id, "fig1") && id != "fig10" && id != "fig12",
		strings.HasPrefix(id, "fig2"), strings.HasPrefix(id, "fig3"):
		return "time (s)"
	case id == "ext-mice":
		return "mouse index"
	default:
		return "gamma"
	}
}

func yLabelFor(id string) string {
	switch {
	case id == "fig1":
		return "cwnd (segments)"
	case id == "fig2":
		return "rate (bps)"
	case strings.HasPrefix(id, "fig3"):
		return "normalized traffic"
	case id == "ext-mice":
		return "FCT (s)"
	case id == "prop3":
		return "numeric gamma*"
	default:
		return "attack gain"
	}
}
