package report

import (
	"strings"
	"testing"

	"pulsedos/internal/experiments"
)

func sampleSeries() []experiments.Series {
	return []experiments.Series{
		{Label: "analytic", Points: []experiments.Point{
			{X: 0.1, Y: 0.2}, {X: 0.3, Y: 0.5}, {X: 0.5, Y: 0.45}, {X: 0.7, Y: 0.3},
			{X: 0.75, Y: 0.28}, {X: 0.8, Y: 0.25}, {X: 0.85, Y: 0.2}, {X: 0.9, Y: 0.15},
			{X: 0.92, Y: 0.12}, {X: 0.94, Y: 0.1}, {X: 0.96, Y: 0.07}, {X: 0.98, Y: 0.04},
			{X: 0.99, Y: 0.02},
		}},
		{Label: "measured", Points: []experiments.Point{
			{X: 0.1, Y: 0.25}, {X: 0.5, Y: 0.4}, {X: 0.9, Y: 0.1},
		}},
	}
}

func TestChartSVGStructure(t *testing.T) {
	c := Chart{
		Title:  "gain vs gamma",
		XLabel: "gamma",
		YLabel: "gain",
		Series: sampleSeries(),
	}
	svg := c.SVG()
	for _, want := range []string{
		"<svg", "</svg>", "gain vs gamma",
		"<polyline", // the 13-point analytic line
		"<circle",   // the measured scatter
		"gamma", "gain",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Coordinates must stay inside the canvas.
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("SVG contains invalid coordinates")
	}
}

func TestChartSVGEmpty(t *testing.T) {
	svg := Chart{Title: "empty"}.SVG()
	if !strings.Contains(svg, "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartSVGDegenerateBounds(t *testing.T) {
	// A single point and a flat series must not divide by zero.
	c := Chart{Series: []experiments.Series{
		{Label: "measured", Points: []experiments.Point{{X: 0.5, Y: 0.5}}},
		{Label: "flat", Points: []experiments.Point{{X: 0, Y: 1}, {X: 1, Y: 1}}},
	}}
	svg := c.SVG()
	if strings.Contains(svg, "NaN") {
		t.Error("degenerate bounds produced NaN")
	}
}

func TestChartEscapesLabels(t *testing.T) {
	c := Chart{
		Title:  `<script>alert("x")</script>`,
		Series: []experiments.Series{{Label: "a<b", Points: []experiments.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}}},
	}
	svg := c.SVG()
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&lt;b") {
		t.Error("label not escaped")
	}
}

func TestWriteHTML(t *testing.T) {
	figs := []*experiments.FigureResult{
		{
			ID:     "fig8",
			Title:  "attack gain vs gamma",
			Series: sampleSeries(),
			Notes:  []string{"class=normal-gain", "peak at gamma=0.5"},
		},
		nil, // must be skipped
		{ID: "fig4", Title: "risk curves", Series: sampleSeries()},
	}
	var sb strings.Builder
	if err := WriteHTML(&sb, "pulsedos report", figs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>", "pulsedos report", "fig8", "fig4",
		"class=normal-gain", "<svg", "</html>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 2 {
		t.Errorf("want 2 charts, got %d", strings.Count(out, "<svg"))
	}
}

func TestFormatTick(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{0.25, "0.25"},
		{5, "5"},
		{42.7, "43"},
		{1500, "1.5k"},
		{15e6, "15M"},
	}
	for _, tt := range tests {
		if got := formatTick(tt.in); got != tt.want {
			t.Errorf("formatTick(%g) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAxisLabels(t *testing.T) {
	if xLabelFor("fig3a") != "time (s)" || yLabelFor("fig3a") != "normalized traffic" {
		t.Error("fig3 labels")
	}
	if xLabelFor("fig8") != "gamma" || yLabelFor("fig8") != "attack gain" {
		t.Error("gain labels")
	}
	if yLabelFor("fig1") != "cwnd (segments)" {
		t.Error("fig1 label")
	}
	if xLabelFor("ext-mice") != "mouse index" || yLabelFor("ext-mice") != "FCT (s)" {
		t.Error("mice labels")
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 28); got != "short" {
		t.Errorf("truncate = %q", got)
	}
	long := strings.Repeat("x", 40)
	if got := truncate(long, 10); len(got) > 12 || !strings.HasSuffix(got, "…") {
		t.Errorf("truncate long = %q", got)
	}
}
