package optimize

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pulsedos/internal/model"
)

func testParams() model.Params {
	return model.Params{
		AIMD:       model.TCPAIMD(),
		AckRatio:   1,
		PacketSize: 1040,
		Bottleneck: 15e6,
		RTTs:       []float64{0.1, 0.2, 0.3, 0.4},
	}
}

func TestOptimalGammaCorollary3(t *testing.T) {
	// κ = 1 ⇒ γ* = √C_Ψ.
	for _, cPsi := range []float64{0.01, 0.04, 0.25, 0.81} {
		got, err := OptimalGamma(cPsi, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-math.Sqrt(cPsi)) > 1e-12 {
			t.Errorf("gamma*(%g, 1) = %g, want sqrt = %g", cPsi, got, math.Sqrt(cPsi))
		}
	}
}

func TestOptimalGammaCorollary1RiskAverse(t *testing.T) {
	// κ → ∞ ⇒ γ* → C_Ψ from above.
	const cPsi = 0.2
	prev := 1.0
	for _, kappa := range []float64{1, 10, 100, 1000, 10000} {
		got, err := OptimalGamma(cPsi, kappa)
		if err != nil {
			t.Fatal(err)
		}
		if got >= prev {
			t.Errorf("gamma* not decreasing in kappa: %g at %g", got, kappa)
		}
		prev = got
	}
	if math.Abs(prev-cPsi) > 0.01 {
		t.Errorf("lim gamma* = %g, want -> C_Psi = %g", prev, cPsi)
	}
}

func TestOptimalGammaCorollary2RiskLoving(t *testing.T) {
	// κ → 0 ⇒ γ* → 1 from below.
	const cPsi = 0.2
	prev := 0.0
	for _, kappa := range []float64{1, 0.1, 0.01, 0.001} {
		got, err := OptimalGamma(cPsi, kappa)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("gamma* not increasing as kappa -> 0: %g at %g", got, kappa)
		}
		prev = got
	}
	if math.Abs(prev-1) > 0.01 {
		t.Errorf("lim gamma* = %g, want -> 1", prev)
	}
}

// TestOptimalGammaBounds is Proposition 3's feasibility claim:
// C_Ψ < γ* < 1 for all C_Ψ ∈ (0,1), κ > 0.
func TestOptimalGammaBounds(t *testing.T) {
	property := func(cPsiRaw, kappaRaw uint16) bool {
		cPsi := 0.001 + 0.997*float64(cPsiRaw)/65535
		kappa := 0.01 + 20*float64(kappaRaw)/65535
		gamma, err := OptimalGamma(cPsi, kappa)
		if err != nil {
			return false
		}
		return gamma > cPsi && gamma < 1
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestOptimalGammaIsMaximizer: the closed form beats every gridded
// alternative of the gain function.
func TestOptimalGammaIsMaximizer(t *testing.T) {
	property := func(cPsiRaw, kappaRaw uint8) bool {
		cPsi := 0.01 + 0.9*float64(cPsiRaw)/255
		kappa := 0.05 + 8*float64(kappaRaw)/255
		gStar, err := OptimalGamma(cPsi, kappa)
		if err != nil {
			return false
		}
		best := model.Gain(cPsi, gStar, kappa)
		for g := 0.001; g < 1; g += 0.001 {
			if model.Gain(cPsi, g, kappa) > best+1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestOptimalGammaErrors(t *testing.T) {
	if _, err := OptimalGamma(0, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("CPsi=0: %v", err)
	}
	if _, err := OptimalGamma(1, 1); !errors.Is(err, ErrInfeasible) {
		t.Errorf("CPsi=1: %v", err)
	}
	if _, err := OptimalGamma(0.5, 0); err == nil {
		t.Error("kappa=0 accepted")
	}
	if _, err := OptimalGamma(0.5, -1); err == nil {
		t.Error("negative kappa accepted")
	}
}

func TestOptimalMuMatchesGamma(t *testing.T) {
	// μ* must realize γ*: γ = C_attack/(1+μ).
	cPsi, kappa, cAttack := 0.04, 1.0, 2.0
	mu, err := OptimalMu(cAttack, cPsi, kappa)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := OptimalGamma(cPsi, kappa)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cAttack/(1+mu)-gamma) > 1e-12 {
		t.Errorf("mu* = %g does not realize gamma* = %g", mu, gamma)
	}
}

func TestRiskNeutralHelpers(t *testing.T) {
	g, err := RiskNeutralGamma(0.09)
	if err != nil || math.Abs(g-0.3) > 1e-12 {
		t.Errorf("RiskNeutralGamma = %g, %v", g, err)
	}
	if _, err := RiskNeutralGamma(1.5); !errors.Is(err, ErrInfeasible) {
		t.Errorf("infeasible error = %v", err)
	}

	// Corollary 4 must agree with Proposition 4 at κ = 1.
	p := testParams()
	extent, rate := 0.075, 35e6
	cPsi := p.CPsi(extent, rate)
	muProp, err := OptimalMu(rate/p.Bottleneck, cPsi, 1)
	if err != nil {
		t.Fatal(err)
	}
	muCor, err := RiskNeutralMu(rate/p.Bottleneck, extent, p.CVictim())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(muProp-muCor) > 1e-9 {
		t.Errorf("Prop4 mu = %g, Cor4 mu = %g", muProp, muCor)
	}
	if _, err := RiskNeutralMu(0, 1, 1); err == nil {
		t.Error("zero C_attack accepted")
	}
}

func TestPlanAttack(t *testing.T) {
	p := testParams()
	plan, err := PlanAttack(p, 0.075, 35e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Gamma <= plan.CPsi || plan.Gamma >= 1 {
		t.Errorf("plan gamma = %g outside (CPsi, 1)", plan.Gamma)
	}
	if plan.Mu < 0 {
		t.Errorf("plan mu = %g", plan.Mu)
	}
	wantPeriod := (1 + plan.Mu) * 0.075
	if math.Abs(plan.Period-wantPeriod) > 1e-12 {
		t.Errorf("period = %g, want %g", plan.Period, wantPeriod)
	}
	// Realized gamma from the planned attack spec must equal gamma*.
	spec := model.Attack{Extent: 0.075, Rate: 35e6, Period: plan.Period}
	if g := spec.Gamma(p.Bottleneck); math.Abs(g-plan.Gamma) > 1e-9 {
		t.Errorf("realized gamma = %g, want %g", g, plan.Gamma)
	}
	if plan.Gain <= 0 || plan.Gain >= 1 {
		t.Errorf("gain = %g", plan.Gain)
	}
}

func TestPlanAttackErrors(t *testing.T) {
	p := testParams()
	if _, err := PlanAttack(p, 0, 35e6, 1); err == nil {
		t.Error("zero extent accepted")
	}
	if _, err := PlanAttack(p, 0.075, 35e6, 0); err == nil {
		t.Error("zero kappa accepted")
	}
	bad := p
	bad.RTTs = nil
	if _, err := PlanAttack(bad, 0.075, 35e6, 1); err == nil {
		t.Error("invalid params accepted")
	}
	// A pulse rate below the bottleneck capacity cannot reach large γ*
	// values; risk-loving attackers then need flooding.
	weak := p
	if _, err := PlanAttack(weak, 0.075, 0.5e6, 0.0001); err == nil {
		t.Error("unreachable gamma* should fail")
	}
}

func TestGoldenSectionFindsQuadraticMax(t *testing.T) {
	f := func(x float64) float64 { return -(x - 0.37) * (x - 0.37) }
	x, err := GoldenSection(f, 0, 1, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.37) > 1e-8 {
		t.Errorf("argmax = %g", x)
	}
	if _, err := GoldenSection(f, 1, 0, 1e-10); err == nil {
		t.Error("inverted interval accepted")
	}
	// Non-positive tolerance falls back to a sane default.
	if _, err := GoldenSection(f, 0, 1, -1); err != nil {
		t.Errorf("negative tol: %v", err)
	}
}

func TestGoldenSectionMatchesClosedForm(t *testing.T) {
	for _, cPsi := range []float64{0.02, 0.1, 0.3} {
		for _, kappa := range []float64{0.5, 1, 3} {
			closed, err := OptimalGamma(cPsi, kappa)
			if err != nil {
				t.Fatal(err)
			}
			numeric, err := GoldenSection(func(g float64) float64 {
				return model.Gain(cPsi, g, kappa)
			}, cPsi, 1, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(closed-numeric) > 1e-6 {
				t.Errorf("CPsi=%g kappa=%g: closed %g vs numeric %g", cPsi, kappa, closed, numeric)
			}
		}
	}
}

func TestGridMax(t *testing.T) {
	x, y, err := GridMax(func(x float64) float64 { return -(x - 0.5) * (x - 0.5) }, 0, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-0.5) > 0.011 || y > 0 {
		t.Errorf("grid max = (%g, %g)", x, y)
	}
	if _, _, err := GridMax(nil, 1, 0, 10); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, _, err := GridMax(nil, 0, 1, 0); err == nil {
		t.Error("zero points accepted")
	}
}

func TestSensitivityZeroRegretAtTruth(t *testing.T) {
	points, err := Sensitivity(0.05, 1, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(points[0].Regret) > 1e-12 {
		t.Errorf("regret at factor 1 = %g", points[0].Regret)
	}
}

func TestSensitivityRegretGrowsWithError(t *testing.T) {
	factors := []float64{1, 2, 4, 8}
	points, err := Sensitivity(0.05, 1, factors)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, p := range points {
		if p.Regret < prev-1e-12 {
			t.Errorf("regret not monotone: %g after %g (factor %g)", p.Regret, prev, p.ErrorFactor)
		}
		if p.Regret < 0 {
			t.Errorf("negative regret %g at factor %g", p.Regret, p.ErrorFactor)
		}
		prev = p.Regret
	}
	// The paper's implicit robustness claim: even a 2x estimation error
	// costs only a small slice of the achievable gain.
	if points[1].Regret > 0.15*points[1].OptimalGain {
		t.Errorf("2x error regret %.4f exceeds 15%% of optimal %.4f",
			points[1].Regret, points[1].OptimalGain)
	}
}

func TestSensitivityUnderestimationSymmetric(t *testing.T) {
	points, err := Sensitivity(0.1, 1, []float64{0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Regret < 0 || p.Regret > p.OptimalGain {
			t.Errorf("factor %g: regret %g outside [0, optimal]", p.ErrorFactor, p.Regret)
		}
		// Underestimating C_Ψ plans a lower γ than optimal.
		trueGamma, _ := OptimalGamma(0.1, 1)
		if p.PlannedGamma >= trueGamma {
			t.Errorf("factor %g: planned gamma %g not below true %g",
				p.ErrorFactor, p.PlannedGamma, trueGamma)
		}
	}
}

func TestSensitivityInfeasibleBelief(t *testing.T) {
	// Factor pushing the estimate past 1: attacker falls back to boundary.
	points, err := Sensitivity(0.4, 1, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].RealizedGain > 0.01 {
		t.Errorf("boundary plan should realize ~0 gain, got %g", points[0].RealizedGain)
	}
	if _, err := Sensitivity(0, 1, []float64{1}); err == nil {
		t.Error("infeasible true CPsi accepted")
	}
	if _, err := Sensitivity(0.1, 0, []float64{1}); err == nil {
		t.Error("zero kappa accepted")
	}
	if _, err := Sensitivity(0.1, 1, []float64{0}); err == nil {
		t.Error("zero factor accepted")
	}
}
