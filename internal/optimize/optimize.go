// Package optimize solves the paper's attack-tuning problem (§3): maximize
// the attack gain G_attack(γ) = (1 - C_Ψ/γ)(1-γ)^κ subject to
// 0 < C_Ψ < γ < 1. It provides the closed-form optimum of Proposition 3 and
// its corollaries, the optimal duty-cycle reciprocal μ* of Proposition 4 /
// Corollary 4, and generic numeric maximizers (golden-section and grid
// search) used to cross-validate the closed forms.
package optimize

import (
	"errors"
	"fmt"
	"math"

	"pulsedos/internal/model"
)

// ErrInfeasible is returned when the constraint 0 < C_Ψ < 1 cannot hold: the
// victim population is too resilient for any pulsing attack in the model's
// regime.
var ErrInfeasible = errors.New("optimize: C_Psi outside (0,1); no feasible gamma")

// OptimalGamma evaluates Proposition 3: the unique maximizer of the gain
//
//	γ* = [C_Ψ(1-κ) - sqrt(C_Ψ²(1-κ)² + 4κC_Ψ)] / (-2κ),
//
// which always satisfies C_Ψ < γ* < 1. κ must be positive; κ = 1 reduces to
// Corollary 3's γ* = √C_Ψ, and the κ→∞ / κ→0 limits are Corollaries 1–2.
func OptimalGamma(cPsi, kappa float64) (float64, error) {
	if cPsi <= 0 || cPsi >= 1 {
		return 0, ErrInfeasible
	}
	if kappa <= 0 {
		return 0, fmt.Errorf("optimize: kappa must be positive, got %g", kappa)
	}
	oneMinusK := 1 - kappa
	disc := cPsi*cPsi*oneMinusK*oneMinusK + 4*kappa*cPsi
	gamma := (cPsi*oneMinusK - math.Sqrt(disc)) / (-2 * kappa)
	return gamma, nil
}

// OptimalMu evaluates Proposition 4: the duty-cycle reciprocal
// μ* = C_attack/γ* - 1 that realizes the optimal γ* for a given per-pulse
// rate ratio C_attack = R_attack/R_bottle. A negative result means the
// requested C_attack cannot reach γ* even with back-to-back pulses; callers
// should treat it as "flooding required".
func OptimalMu(cAttack, cPsi, kappa float64) (float64, error) {
	gamma, err := OptimalGamma(cPsi, kappa)
	if err != nil {
		return 0, err
	}
	if gamma <= 0 {
		return 0, ErrInfeasible
	}
	return cAttack/gamma - 1, nil
}

// RiskNeutralGamma evaluates Corollary 3: γ* = √C_Ψ at κ = 1.
func RiskNeutralGamma(cPsi float64) (float64, error) {
	if cPsi <= 0 || cPsi >= 1 {
		return 0, ErrInfeasible
	}
	return math.Sqrt(cPsi), nil
}

// RiskNeutralMu evaluates Corollary 4 for a risk-neutral attacker:
//
//	μ* = sqrt(C_attack / (T_extent · C_victim)) - 1,
//
// where C_victim is Eq. 18's victim constant and extentSec the pulse width.
func RiskNeutralMu(cAttack, extentSec, cVictim float64) (float64, error) {
	if cAttack <= 0 || extentSec <= 0 || cVictim <= 0 {
		return 0, errors.New("optimize: C_attack, T_extent, C_victim must be positive")
	}
	return math.Sqrt(cAttack/(extentSec*cVictim)) - 1, nil
}

// Plan is a fully resolved optimal attack for a concrete victim population.
type Plan struct {
	Gamma  float64 // optimal normalized average attack rate γ*
	Mu     float64 // optimal T_space/T_extent
	Period float64 // optimal T_AIMD = (1+μ)·T_extent, seconds
	Gain   float64 // attack gain at the optimum
	CPsi   float64 // the constant the optimum was computed from
}

// PlanAttack computes the optimal attack period for given victims, pulse
// width (seconds), pulse rate (bps), and risk preference κ.
func PlanAttack(p model.Params, extentSec, rate, kappa float64) (Plan, error) {
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	if extentSec <= 0 || rate <= 0 {
		return Plan{}, errors.New("optimize: pulse extent and rate must be positive")
	}
	cPsi := p.CPsi(extentSec, rate)
	gamma, err := OptimalGamma(cPsi, kappa)
	if err != nil {
		return Plan{}, err
	}
	cAttack := rate / p.Bottleneck
	mu := cAttack/gamma - 1
	if mu < 0 {
		return Plan{}, fmt.Errorf(
			"optimize: rate %g bps too low to reach gamma* = %.4f (needs C_attack >= gamma*)",
			rate, gamma)
	}
	return Plan{
		Gamma:  gamma,
		Mu:     mu,
		Period: (1 + mu) * extentSec,
		Gain:   model.Gain(cPsi, gamma, kappa),
		CPsi:   cPsi,
	}, nil
}

// GoldenSection maximizes a unimodal function f on [lo, hi] to the given
// absolute tolerance, returning the maximizing abscissa. It is used to
// cross-validate the closed-form γ*.
func GoldenSection(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("optimize: empty interval [%g, %g]", lo, hi)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949 // (sqrt(5)-1)/2
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2, nil
}

// GridMax evaluates f on n+1 evenly spaced points of [lo, hi] and returns
// the best abscissa and value. Coarse but assumption-free; tests use it to
// confirm the analytic optimum is a global one.
func GridMax(f func(float64) float64, lo, hi float64, n int) (bestX, bestY float64, err error) {
	if hi <= lo || n < 1 {
		return 0, 0, fmt.Errorf("optimize: bad grid [%g, %g] x %d", lo, hi, n)
	}
	bestX = lo
	bestY = math.Inf(-1)
	for i := 0; i <= n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n)
		if y := f(x); y > bestY {
			bestX, bestY = x, y
		}
	}
	return bestX, bestY, nil
}

// SensitivityPoint quantifies the cost of mis-estimating the victim
// constant: an attacker who believes C_Ψ is factor·C_Ψ plans γ* for the
// wrong constant and realizes less gain under the true one.
type SensitivityPoint struct {
	ErrorFactor  float64 // estimate = factor × true C_Ψ
	PlannedGamma float64 // γ* computed from the wrong estimate
	RealizedGain float64 // gain at PlannedGamma under the true C_Ψ
	OptimalGain  float64 // gain at the true optimum
	Regret       float64 // OptimalGain - RealizedGain (>= 0)
}

// Sensitivity evaluates the plan's robustness to C_Ψ estimation error for
// each multiplicative error factor. The paper assumes the attacker knows the
// victim population exactly; this quantifies how much that assumption is
// worth — in practice very little, because the gain surface is flat around
// γ*.
func Sensitivity(trueCPsi, kappa float64, factors []float64) ([]SensitivityPoint, error) {
	if trueCPsi <= 0 || trueCPsi >= 1 {
		return nil, ErrInfeasible
	}
	if kappa <= 0 {
		return nil, fmt.Errorf("optimize: kappa must be positive, got %g", kappa)
	}
	trueGamma, err := OptimalGamma(trueCPsi, kappa)
	if err != nil {
		return nil, err
	}
	optimal := model.Gain(trueCPsi, trueGamma, kappa)

	out := make([]SensitivityPoint, 0, len(factors))
	for _, f := range factors {
		if f <= 0 {
			return nil, fmt.Errorf("optimize: error factor must be positive, got %g", f)
		}
		believed := trueCPsi * f
		var planned float64
		if believed >= 1 {
			// The attacker believes no feasible attack exists; model this
			// as falling back to the most cautious plan on the estimate's
			// boundary.
			planned = 1 - 1e-9
		} else {
			planned, err = OptimalGamma(believed, kappa)
			if err != nil {
				return nil, err
			}
		}
		realized := model.Gain(trueCPsi, planned, kappa)
		out = append(out, SensitivityPoint{
			ErrorFactor:  f,
			PlannedGamma: planned,
			RealizedGain: realized,
			OptimalGain:  optimal,
			Regret:       optimal - realized,
		})
	}
	return out, nil
}
