package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// calmSeries is a steady background of ~1 kB per 50 ms bin with mild noise.
func calmSeries(n int, seed int64) []float64 {
	rnd := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1000 + 50*rnd.NormFloat64()
	}
	return xs
}

// withFlood raises every bin after start to the given level.
func withFlood(xs []float64, start int, level float64) []float64 {
	out := append([]float64(nil), xs...)
	for i := start; i < len(out); i++ {
		out[i] = level
	}
	return out
}

// withPulses adds rectangular pulses of the given height/width/period.
func withPulses(xs []float64, height float64, width, period int) []float64 {
	out := append([]float64(nil), xs...)
	for i := range out {
		if i%period < width {
			out[i] += height
		}
	}
	return out
}

func TestThresholdDetectsFlood(t *testing.T) {
	// Capacity 1 Mbps at 50 ms bins → 6250 B/bin at full rate.
	d, err := NewThreshold(1e6, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	calm := calmSeries(400, 1)
	if v := d.Detect(calm, 0.05); v.Attack {
		t.Errorf("false alarm on calm traffic: %+v", v)
	}
	flooded := withFlood(calm, 200, 6250)
	v := d.Detect(flooded, 0.05)
	if !v.Attack {
		t.Errorf("flood missed: %+v", v)
	}
	if v.AtBin < 200 {
		t.Errorf("alarm at %d, before the flood began", v.AtBin)
	}
}

func TestThresholdMissesLowDutyPulses(t *testing.T) {
	// The paper's evasion claim: short pulses at low average rate stay
	// under a windowed volume detector that a flood trips.
	d, err := NewThreshold(1e6, 0.9, 20)
	if err != nil {
		t.Fatal(err)
	}
	// One 50 ms pulse (1 bin) of full line rate every 2 s (40 bins):
	// γ ≈ 0.12 after background.
	pulsed := withPulses(calmSeries(400, 2), 6250, 1, 40)
	if v := d.Detect(pulsed, 0.05); v.Attack {
		t.Errorf("low-duty pulses tripped the volume detector: %+v", v)
	}
}

func TestThresholdValidation(t *testing.T) {
	if _, err := NewThreshold(0, 0.9, 10); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewThreshold(1e6, 0, 10); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := NewThreshold(1e6, 0.9, 0); err == nil {
		t.Error("zero window accepted")
	}
	d, err := NewThreshold(1e6, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Detect(nil, 0.05); v.Attack || v.AtBin != -1 {
		t.Errorf("empty series verdict: %+v", v)
	}
	if d.Name() != "threshold" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestCUSUMDetectsLevelShift(t *testing.T) {
	d, err := NewCUSUM(100, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	calm := calmSeries(400, 3)
	if v := d.Detect(calm, 0.05); v.Attack {
		t.Errorf("false alarm on calm traffic: %+v", v)
	}
	shifted := withFlood(calm, 200, 1400) // +8σ sustained shift
	v := d.Detect(shifted, 0.05)
	if !v.Attack {
		t.Errorf("level shift missed: %+v", v)
	}
	if v.AtBin < 200 || v.AtBin > 220 {
		t.Errorf("alarm at bin %d, want shortly after 200", v.AtBin)
	}
}

func TestCUSUMScoreMonotoneInShift(t *testing.T) {
	d, err := NewCUSUM(100, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	calm := calmSeries(400, 4)
	prev := -1.0
	for _, level := range []float64{1100, 1300, 1600, 2000} {
		v := d.Detect(withFlood(calm, 200, level), 0.05)
		if v.Score <= prev {
			t.Errorf("score %g at level %g not increasing", v.Score, level)
		}
		prev = v.Score
	}
}

func TestCUSUMValidationAndDegenerate(t *testing.T) {
	if _, err := NewCUSUM(1, 0.5, 5); err == nil {
		t.Error("calibBins=1 accepted")
	}
	if _, err := NewCUSUM(10, -1, 5); err == nil {
		t.Error("negative drift accepted")
	}
	if _, err := NewCUSUM(10, 0.5, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	d, err := NewCUSUM(10, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Detect(make([]float64, 5), 0.05); v.Attack {
		t.Error("series shorter than calibration should not alarm")
	}
	// Zero-variance calibration must not divide by zero.
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 1000
	}
	v := d.Detect(withFlood(flat, 30, 5000), 0.05)
	if !v.Attack {
		t.Errorf("shift after flat calibration missed: %+v", v)
	}
	if d.Name() != "cusum" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestDTWDistanceIdentity(t *testing.T) {
	property := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, x)
		}
		if len(xs) == 0 {
			return true
		}
		return Distance(xs, xs) == 0
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(71))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

func TestDTWDistanceSymmetric(t *testing.T) {
	a := []float64{0, 1, 2, 1, 0}
	b := []float64{0, 0, 2, 2, 0}
	if d1, d2 := Distance(a, b), Distance(b, a); math.Abs(d1-d2) > 1e-12 {
		t.Errorf("asymmetric: %g vs %g", d1, d2)
	}
}

func TestDTWDistanceWarpsTimeShifts(t *testing.T) {
	// A time-shifted copy should be much closer under DTW than under
	// pointwise L1.
	a := []float64{0, 0, 5, 5, 0, 0, 0, 0}
	b := []float64{0, 0, 0, 0, 5, 5, 0, 0}
	l1 := 0.0
	for i := range a {
		l1 += math.Abs(a[i] - b[i])
	}
	if d := Distance(a, b); d >= l1 {
		t.Errorf("DTW %g not below L1 %g for shifted pulses", d, l1)
	}
	if Distance(nil, a) != math.Inf(1) || Distance(a, nil) != math.Inf(1) {
		t.Error("empty input should be infinitely far")
	}
}

func TestDTWDetectorFindsPulseShape(t *testing.T) {
	d, err := NewDTW(40, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Strong rectangular pulses matching the template's duty cycle.
	pulsed := withPulses(calmSeries(400, 5), 50000, 4, 40)
	v := d.Detect(pulsed, 0.05)
	if !v.Attack {
		t.Errorf("pulse train missed: %+v", v)
	}
	calm := calmSeries(400, 6)
	calmV := d.Detect(calm, 0.05)
	if calmV.Score >= v.Score {
		t.Errorf("calm score %g >= pulsed score %g", calmV.Score, v.Score)
	}
}

func TestDTWValidation(t *testing.T) {
	cases := []struct {
		bins  int
		duty  float64
		thres float64
	}{
		{1, 0.1, 0.6},
		{40, 0, 0.6},
		{40, 1, 0.6},
		{40, 0.1, 0},
	}
	for _, c := range cases {
		if _, err := NewDTW(c.bins, c.duty, c.thres); err == nil {
			t.Errorf("NewDTW(%d, %g, %g) accepted", c.bins, c.duty, c.thres)
		}
	}
	d, err := NewDTW(40, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Detect(make([]float64, 10), 0.05); v.Attack {
		t.Error("short series should not alarm")
	}
	if d.Name() != "dtw" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestHitRate(t *testing.T) {
	d, err := NewThreshold(1e6, 0.9, 10)
	if err != nil {
		t.Fatal(err)
	}
	calm := calmSeries(200, 7)
	hot := withFlood(calmSeries(200, 8), 50, 6250)
	rate, err := HitRate(d, [][]float64{calm, hot, hot, calm}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", rate)
	}
	if _, err := HitRate(nil, nil, 0.05); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := HitRate(d, nil, 0.05); err == nil {
		t.Error("no series accepted")
	}
}

func TestSpectralDetectorFindsPeriodicPulses(t *testing.T) {
	d, err := NewSpectral(0.2, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	pulsed := withPulses(calmSeries(400, 9), 30000, 2, 40) // 2 s period at 50 ms bins
	v := d.Detect(pulsed, 0.05)
	if !v.Attack {
		t.Errorf("periodic pulses missed: %+v", v)
	}
	calm := d.Detect(calmSeries(400, 10), 0.05)
	if calm.Attack {
		t.Errorf("false alarm on calm traffic: %+v", calm)
	}
	if calm.Score >= v.Score {
		t.Errorf("calm score %g >= pulsed score %g", calm.Score, v.Score)
	}
}

func TestSpectralDetectorBandFilter(t *testing.T) {
	// Pulses with a 0.1 s period sit outside a [0.5 s, 5 s] band and must
	// not alarm even though they dominate the spectrum.
	d, err := NewSpectral(0.2, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	fast := withPulses(calmSeries(400, 11), 30000, 1, 2)
	if v := d.Detect(fast, 0.05); v.Attack {
		t.Errorf("out-of-band periodicity alarmed: %+v", v)
	}
}

func TestSpectralValidation(t *testing.T) {
	if _, err := NewSpectral(0, 0.2, 5); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, err := NewSpectral(1.5, 0.2, 5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewSpectral(0.2, 5, 0.2); err == nil {
		t.Error("inverted band accepted")
	}
	d, err := NewSpectral(0.2, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v := d.Detect(make([]float64, 4), 0.05); v.Attack {
		t.Error("short series alarmed")
	}
	if d.Name() != "spectral" {
		t.Errorf("name = %q", d.Name())
	}
}

func TestJitterEvadesSpectralLessThanUniform(t *testing.T) {
	// Deterministic synthetic check of the evasion story: jittering pulse
	// positions spreads spectral power, lowering the detector's score.
	d, err := NewSpectral(0.15, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	base := calmSeries(512, 12)
	uniform := withPulses(base, 30000, 2, 40)
	rnd := rand.New(rand.NewSource(13))
	jittered := append([]float64(nil), base...)
	for i := 0; i < len(jittered); i += 40 {
		off := rnd.Intn(21) - 10 // ±10 bins = ±25% of the period
		for w := 0; w < 2; w++ {
			idx := i + off + w
			if idx >= 0 && idx < len(jittered) {
				jittered[idx] += 30000
			}
		}
	}
	us := d.Detect(uniform, 0.05).Score
	js := d.Detect(jittered, 0.05).Score
	if js >= us {
		t.Errorf("jittered spectral score %g >= uniform %g", js, us)
	}
}

func TestROCAndAUC(t *testing.T) {
	// Perfectly separable scores.
	attacked := []float64{0.9, 0.8, 0.95}
	calm := []float64{0.1, 0.2, 0.05}
	thresholds := []float64{0.0, 0.3, 0.5, 0.85, 1.0}
	roc := ROC(attacked, calm, thresholds)
	if len(roc) != len(thresholds) {
		t.Fatalf("roc points = %d", len(roc))
	}
	// At threshold 0.5: all attacks flagged, no calm flagged.
	var mid ROCPoint
	for _, p := range roc {
		if p.Threshold == 0.5 {
			mid = p
		}
	}
	if mid.TPR != 1 || mid.FPR != 0 {
		t.Errorf("mid point = %+v", mid)
	}
	if auc := AUC(roc); auc < 0.99 {
		t.Errorf("separable AUC = %g, want ~1", auc)
	}

	// Identical distributions: AUC ≈ 0.5.
	same := []float64{0.1, 0.5, 0.9}
	rocChance := ROC(same, same, []float64{0, 0.2, 0.4, 0.6, 0.8, 1})
	if auc := AUC(rocChance); auc < 0.4 || auc > 0.6 {
		t.Errorf("chance AUC = %g, want ~0.5", auc)
	}
}

func TestScoreTraces(t *testing.T) {
	d, err := NewCUSUM(10, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	calm := calmSeries(100, 21)
	hot := withFlood(calmSeries(100, 22), 30, 3000)
	scores, err := ScoreTraces(d, [][]float64{calm, hot}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[1] <= scores[0] {
		t.Errorf("scores = %v", scores)
	}
	if _, err := ScoreTraces(nil, nil, 0.05); err == nil {
		t.Error("nil detector accepted")
	}
}

func TestSpectralSeparatesAttackFromCalmROC(t *testing.T) {
	d, err := NewSpectral(0.3, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var attacked, calm [][]float64
	for seed := int64(0); seed < 6; seed++ {
		calm = append(calm, calmSeries(400, 30+seed))
		attacked = append(attacked, withPulses(calmSeries(400, 40+seed), 30000, 2, 40))
	}
	as, err := ScoreTraces(d, attacked, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := ScoreTraces(d, calm, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
	auc := AUC(ROC(as, cs, thresholds))
	if auc < 0.9 {
		t.Errorf("spectral AUC = %g on synthetic pulse trains, want > 0.9", auc)
	}
}
