package detect

import (
	"math"
	"testing"
)

// FuzzDTWDistance checks the kernel's invariants on arbitrary inputs:
// non-negativity, identity, and symmetry.
func FuzzDTWDistance(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{3, 2, 1})
	f.Add([]byte{0}, []byte{255})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		if len(rawA) == 0 || len(rawB) == 0 || len(rawA)*len(rawB) > 1<<14 {
			return
		}
		a := make([]float64, len(rawA))
		for i, v := range rawA {
			a[i] = float64(v)
		}
		b := make([]float64, len(rawB))
		for i, v := range rawB {
			b[i] = float64(v)
		}
		d := Distance(a, b)
		if d < 0 || math.IsNaN(d) {
			t.Fatalf("distance = %g", d)
		}
		if Distance(a, a) != 0 {
			t.Fatal("identity violated")
		}
		if rev := Distance(b, a); math.Abs(d-rev) > 1e-9*math.Max(1, d) {
			t.Fatalf("asymmetric: %g vs %g", d, rev)
		}
	})
}

// FuzzDetectors runs every detector over arbitrary series: verdicts must be
// well-formed and score computation must not panic or produce NaN.
func FuzzDetectors(f *testing.F) {
	f.Add([]byte{10, 10, 10, 200, 10, 10, 200})
	f.Fuzz(func(t *testing.T, raw []byte) {
		bins := make([]float64, len(raw))
		for i, v := range raw {
			bins[i] = float64(v) * 100
		}
		threshold, err := NewThreshold(1e6, 1.2, 5)
		if err != nil {
			t.Fatal(err)
		}
		cusum, err := NewCUSUM(4, 0.5, 5)
		if err != nil {
			t.Fatal(err)
		}
		spectral, err := NewSpectral(0.3, 0.1, 10)
		if err != nil {
			t.Fatal(err)
		}
		dtw, err := NewDTW(8, 0.25, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []Detector{threshold, cusum, spectral, dtw} {
			v := d.Detect(bins, 0.05)
			if math.IsNaN(v.Score) || math.IsInf(v.Score, 0) {
				t.Fatalf("%s score = %g", d.Name(), v.Score)
			}
			if v.Attack && v.AtBin < 0 {
				t.Fatalf("%s alarmed without a bin", d.Name())
			}
			if !v.Attack && v.AtBin != -1 {
				t.Fatalf("%s silent but AtBin = %d", d.Name(), v.AtBin)
			}
		}
	})
}
