// Package detect implements three attack-detector archetypes from the
// literature the paper positions PDoS attacks against. The paper models
// detection risk abstractly as (1-γ)^κ; these detectors make the premise
// concrete — detection probability grows with the normalized average attack
// rate γ — and let the experiment harness quantify how much stealth a tuned
// PDoS attack buys over flooding.
//
//   - Threshold: the classic flooding detector — alarm when the windowed
//     average arrival rate exceeds a fraction of capacity (Wang et al. style
//     volume detection).
//   - CUSUM: cumulative-sum change-point detection on the rate series,
//     sensitive to sustained shifts but blind to short pulses.
//   - DTW: dynamic-time-warping template matching against a rectangular
//     pulse, after Sun, Lui & Yau (ICNP 2004) — the defense the paper notes
//     fails when pulses are shorter than the sampling period.
package detect

import (
	"errors"
	"fmt"
	"math"

	"pulsedos/internal/analysis"
	"pulsedos/internal/stats"
)

// Verdict is a detector's judgement over one observation window.
type Verdict struct {
	Attack bool    // detector raised an alarm
	Score  float64 // detector-specific evidence (higher = more suspicious)
	AtBin  int     // first bin at which the alarm fired (-1 if none)
}

// Detector consumes a binned byte-count series (bytes per bin, as produced
// by trace.RateSeries) and renders a verdict.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Detect scans the series; binWidthSec is the bin resolution.
	Detect(bytesPerBin []float64, binWidthSec float64) Verdict
}

// Threshold alarms when the average arrival rate over any sliding window of
// WindowBins bins exceeds Fraction of the link capacity.
type Threshold struct {
	Capacity   float64 // link capacity, bps
	Fraction   float64 // alarm level as a fraction of capacity, e.g. 0.9
	WindowBins int     // sliding-window length in bins
}

var _ Detector = (*Threshold)(nil)

// NewThreshold builds the volume detector.
func NewThreshold(capacityBps, fraction float64, windowBins int) (*Threshold, error) {
	if capacityBps <= 0 || fraction <= 0 || windowBins < 1 {
		return nil, errors.New("detect: threshold needs positive capacity, fraction, window")
	}
	return &Threshold{Capacity: capacityBps, Fraction: fraction, WindowBins: windowBins}, nil
}

// Name implements Detector.
func (t *Threshold) Name() string { return "threshold" }

// Detect implements Detector.
func (t *Threshold) Detect(bins []float64, binWidthSec float64) Verdict {
	v := Verdict{AtBin: -1}
	if len(bins) == 0 || binWidthSec <= 0 {
		return v
	}
	w := t.WindowBins
	if w > len(bins) {
		w = len(bins)
	}
	limit := t.Fraction * t.Capacity
	sum := 0.0
	for i, b := range bins {
		sum += b
		if i >= w {
			sum -= bins[i-w]
		}
		if i+1 < w {
			// Judge only full windows: a lone high-rate bin inside a
			// partially filled window is not a sustained volume anomaly.
			continue
		}
		rate := sum * 8 / (float64(w) * binWidthSec)
		if score := rate / limit; score > v.Score {
			v.Score = score
		}
		if rate > limit && !v.Attack {
			v.Attack = true
			v.AtBin = i
		}
	}
	return v
}

// CUSUM alarms when the one-sided cumulative sum of positive deviations from
// the calibrated mean exceeds a threshold of H standard deviations. Drift
// (in σ) is subtracted per step, so brief pulses decay while sustained
// volume accumulates.
type CUSUM struct {
	CalibBins int     // leading bins used to estimate mean and σ
	Drift     float64 // slack per step, in σ (typical 0.5)
	H         float64 // alarm threshold, in σ (typical 5)
}

var _ Detector = (*CUSUM)(nil)

// NewCUSUM builds the change-point detector.
func NewCUSUM(calibBins int, drift, h float64) (*CUSUM, error) {
	if calibBins < 2 || drift < 0 || h <= 0 {
		return nil, errors.New("detect: CUSUM needs calibBins >= 2, drift >= 0, h > 0")
	}
	return &CUSUM{CalibBins: calibBins, Drift: drift, H: h}, nil
}

// Name implements Detector.
func (c *CUSUM) Name() string { return "cusum" }

// Detect implements Detector.
func (c *CUSUM) Detect(bins []float64, _ float64) Verdict {
	v := Verdict{AtBin: -1}
	if len(bins) <= c.CalibBins {
		return v
	}
	calib := bins[:c.CalibBins]
	mean, err := stats.Mean(calib)
	if err != nil {
		return v
	}
	sd, err := stats.StdDev(calib)
	if err != nil || sd == 0 {
		sd = math.Max(mean*0.05, 1) // degenerate calm baseline
	}
	s := 0.0
	for i := c.CalibBins; i < len(bins); i++ {
		z := (bins[i] - mean) / sd
		s += z - c.Drift
		if s < 0 {
			s = 0
		}
		if s > v.Score {
			v.Score = s
		}
		if s > c.H && !v.Attack {
			v.Attack = true
			v.AtBin = i
		}
	}
	v.Score /= c.H
	return v
}

// DTW matches sliding windows of the (z-scored) rate series against a
// rectangular pulse template via dynamic time warping; a warped distance
// below Threshold marks the window as containing an attack pulse.
type DTW struct {
	TemplateBins int     // pulse-template length in bins
	DutyCycle    float64 // fraction of the template that is "high"
	Threshold    float64 // alarm distance (per-bin normalized)
}

var _ Detector = (*DTW)(nil)

// NewDTW builds the pulse-shape detector.
func NewDTW(templateBins int, dutyCycle, threshold float64) (*DTW, error) {
	if templateBins < 2 || dutyCycle <= 0 || dutyCycle >= 1 || threshold <= 0 {
		return nil, errors.New("detect: DTW needs templateBins >= 2, duty in (0,1), threshold > 0")
	}
	return &DTW{TemplateBins: templateBins, DutyCycle: dutyCycle, Threshold: threshold}, nil
}

// Name implements Detector.
func (d *DTW) Name() string { return "dtw" }

// template returns the z-scored rectangular pulse.
func (d *DTW) template() []float64 {
	tpl := make([]float64, d.TemplateBins)
	high := int(float64(d.TemplateBins) * d.DutyCycle)
	if high < 1 {
		high = 1
	}
	for i := 0; i < high; i++ {
		tpl[i] = 1
	}
	return stats.ZScore(tpl)
}

// Detect implements Detector: slide the template across the series and take
// the minimum per-bin DTW distance.
func (d *DTW) Detect(bins []float64, _ float64) Verdict {
	v := Verdict{AtBin: -1, Score: 0}
	if len(bins) < d.TemplateBins {
		return v
	}
	tpl := d.template()
	best := math.Inf(1)
	bestAt := -1
	for start := 0; start+d.TemplateBins <= len(bins); start += d.TemplateBins / 2 {
		window := stats.ZScore(bins[start : start+d.TemplateBins])
		dist := Distance(window, tpl) / float64(d.TemplateBins)
		if dist < best {
			best = dist
			bestAt = start
		}
	}
	if math.IsInf(best, 1) {
		return v
	}
	// Lower distance = better match = more suspicious; report an inverted
	// score so "higher is more suspicious" holds across detectors.
	v.Score = 1 / (1 + best)
	if best < d.Threshold {
		v.Attack = true
		v.AtBin = bestAt
	}
	return v
}

// Distance computes the classic O(n·m) dynamic-time-warping distance between
// two series under the absolute-difference local cost.
func Distance(a, b []float64) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	curr := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		curr[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			best := prev[j] // insertion
			if prev[j-1] < best {
				best = prev[j-1] // match
			}
			if curr[j-1] < best {
				best = curr[j-1] // deletion
			}
			if i == 1 && j == 1 {
				best = 0
			}
			curr[j] = cost + best
		}
		prev, curr = curr, prev
	}
	return prev[m]
}

// HitRate runs a detector across a set of series and reports the fraction
// that triggered an alarm — the empirical detection probability the risk
// model (1-γ)^κ abstracts.
func HitRate(d Detector, series [][]float64, binWidthSec float64) (float64, error) {
	if d == nil {
		return 0, errors.New("detect: nil detector")
	}
	if len(series) == 0 {
		return 0, fmt.Errorf("detect: %s: no series", d.Name())
	}
	hits := 0
	for _, s := range series {
		if d.Detect(s, binWidthSec).Attack {
			hits++
		}
	}
	return float64(hits) / float64(len(series)), nil
}

// Spectral is the power-spectral-density detector used against shrew-style
// periodic attacks in the literature (Chen & Hwang; Cheng et al.): a pulse
// train concentrates traffic power at its fundamental frequency, so a single
// dominant spectral component carrying a large fraction of the non-DC power
// flags an attack. It catches what volume detectors miss (low average rate)
// as long as the pulses stay periodic — which is exactly why the jittered
// trains exist.
type Spectral struct {
	// MinFraction of the non-DC power the dominant component must carry.
	MinFraction float64
	// MinPeriodSec/MaxPeriodSec bound the periods considered plausible for
	// a PDoS attack; components outside the band are ignored.
	MinPeriodSec float64
	MaxPeriodSec float64
}

var _ Detector = (*Spectral)(nil)

// NewSpectral builds the PSD detector.
func NewSpectral(minFraction, minPeriodSec, maxPeriodSec float64) (*Spectral, error) {
	if minFraction <= 0 || minFraction >= 1 {
		return nil, errors.New("detect: spectral fraction must be in (0,1)")
	}
	if minPeriodSec <= 0 || maxPeriodSec <= minPeriodSec {
		return nil, errors.New("detect: spectral period band invalid")
	}
	return &Spectral{
		MinFraction:  minFraction,
		MinPeriodSec: minPeriodSec,
		MaxPeriodSec: maxPeriodSec,
	}, nil
}

// Name implements Detector.
func (s *Spectral) Name() string { return "spectral" }

// Detect implements Detector.
func (s *Spectral) Detect(bins []float64, binWidthSec float64) Verdict {
	v := Verdict{AtBin: -1}
	if len(bins) < 8 || binWidthSec <= 0 {
		return v
	}
	psd, err := analysis.Periodogram(stats.Normalize(bins))
	if err != nil {
		return v
	}
	total := 0.0
	for k := 1; k < len(psd); k++ {
		total += psd[k]
	}
	if total == 0 {
		return v
	}
	// A periodic pulse train concentrates power at its fundamental and the
	// fundamental's integer harmonics (narrow pulses put most energy in the
	// harmonics). The fundamental is the lowest strong component: scoring
	// arbitrary in-band divisors instead would let a subharmonic claim an
	// out-of-band signal's power.
	maxP := 0.0
	for k := 1; k < len(psd); k++ {
		if psd[k] > maxP {
			maxP = psd[k]
		}
	}
	fundamental := 0
	for k := 1; k < len(psd); k++ {
		if psd[k] >= maxP/2 {
			fundamental = k
			break
		}
	}
	if fundamental == 0 {
		return v
	}
	n := float64(len(bins))
	period := n / float64(fundamental) * binWidthSec
	if period < s.MinPeriodSec || period > s.MaxPeriodSec {
		return v
	}
	comb := 0.0
	for h := fundamental; h < len(psd); h += fundamental {
		comb += psd[h]
	}
	v.Score = comb / total
	if v.Score > s.MinFraction {
		v.Attack = true
		v.AtBin = 0 // spectral evidence is global, not localized
	}
	return v
}

// ROCPoint is one operating point of a detector family: the fraction of
// attacked traces flagged (true-positive rate) against the fraction of calm
// traces flagged (false-positive rate) at one threshold.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC sweeps a score threshold over pre-computed evidence scores and returns
// the receiver operating characteristic, sorted by threshold descending
// (strictest first). Detectors in this package report "higher = more
// suspicious" scores, so a trace is flagged when score > threshold.
func ROC(attackScores, calmScores []float64, thresholds []float64) []ROCPoint {
	out := make([]ROCPoint, 0, len(thresholds))
	for _, th := range thresholds {
		tp, fp := 0, 0
		for _, s := range attackScores {
			if s > th {
				tp++
			}
		}
		for _, s := range calmScores {
			if s > th {
				fp++
			}
		}
		pt := ROCPoint{Threshold: th}
		if len(attackScores) > 0 {
			pt.TPR = float64(tp) / float64(len(attackScores))
		}
		if len(calmScores) > 0 {
			pt.FPR = float64(fp) / float64(len(calmScores))
		}
		out = append(out, pt)
	}
	return out
}

// AUC approximates the area under an ROC curve by trapezoidal integration
// over the curve's (FPR, TPR) points sorted by FPR, anchored at (0,0) and
// (1,1). 0.5 is chance; 1.0 is a perfect detector.
func AUC(points []ROCPoint) float64 {
	type xy struct{ x, y float64 }
	pts := make([]xy, 0, len(points)+2)
	pts = append(pts, xy{0, 0})
	for _, p := range points {
		pts = append(pts, xy{p.FPR, p.TPR})
	}
	pts = append(pts, xy{1, 1})
	// Insertion sort by (x, y): ties in FPR must ascend in TPR so the
	// staircase integrates the upper envelope (tiny inputs).
	less := func(a, b xy) bool {
		if a.x != b.x {
			return a.x < b.x
		}
		return a.y < b.y
	}
	for i := 1; i < len(pts); i++ {
		for j := i; j > 0 && less(pts[j], pts[j-1]); j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	area := 0.0
	for i := 1; i < len(pts); i++ {
		area += (pts[i].x - pts[i-1].x) * (pts[i].y + pts[i-1].y) / 2
	}
	return area
}

// ScoreTraces runs a detector over a set of series and returns the evidence
// scores, for feeding ROC.
func ScoreTraces(d Detector, series [][]float64, binWidthSec float64) ([]float64, error) {
	if d == nil {
		return nil, errors.New("detect: nil detector")
	}
	out := make([]float64, len(series))
	for i, s := range series {
		out[i] = d.Detect(s, binWidthSec).Score
	}
	return out, nil
}
