package iperf

import (
	"testing"

	"pulsedos/internal/netem"
	"pulsedos/internal/sim"
	"pulsedos/internal/tcp"
	"pulsedos/internal/trace"
)

// newLoopSession wires a session whose data and ACK paths loop directly
// between its own endpoints over two clean links.
func newLoopSession(t *testing.T, interval sim.Time) (*sim.Kernel, *Session) {
	t.Helper()
	k := sim.New()
	account := trace.NewFlowAccount()

	var s *Session
	fwdRelay := netem.NodeFunc(func(p *netem.Packet) { s.Receiver().Receive(p) })
	revRelay := netem.NodeFunc(func(p *netem.Packet) { s.Sender().Receive(p) })
	fwd, err := netem.NewLink(k, "fwd", 10e6, 50*sim.Millisecond, netem.NewDropTail(1<<16), fwdRelay)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := netem.NewLink(k, "rev", 10e6, 50*sim.Millisecond, netem.NewDropTail(1<<16), revRelay)
	if err != nil {
		t.Fatal(err)
	}
	s, err = NewSession(k, tcp.DefaultConfig(), 1, fwd, rev, account, interval)
	if err != nil {
		t.Fatal(err)
	}
	return k, s
}

func TestSessionTransfersAndReports(t *testing.T) {
	k, s := newLoopSession(t, sim.Second)
	if err := s.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if s.TotalBytes() == 0 {
		t.Fatal("no bytes transferred")
	}
	reports := s.Reports()
	if len(reports) < 9 || len(reports) > 10 {
		t.Fatalf("reports = %d, want ~10 one-second intervals", len(reports))
	}
	var sum uint64
	for i, r := range reports {
		if r.End.Sub(r.Start) != sim.Second {
			t.Errorf("report %d span = %v", i, r.End.Sub(r.Start))
		}
		sum += r.Bytes
	}
	// Interval reports must tile the transfer: their sum is the total at
	// the last report boundary, which is within one interval of the final
	// total.
	if sum > s.TotalBytes() {
		t.Errorf("interval sum %d exceeds total %d", sum, s.TotalBytes())
	}
	// Steady-state intervals should carry close to the 10 Mbps line rate.
	mid := reports[5]
	if mid.Mbps() < 5 {
		t.Errorf("mid-transfer rate = %.2f Mbps, want near line rate", mid.Mbps())
	}
}

func TestSessionNoIntervalReports(t *testing.T) {
	k, s := newLoopSession(t, 0)
	if err := s.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(s.Reports()) != 0 {
		t.Errorf("reports with interval=0: %d", len(s.Reports()))
	}
	if s.TotalBytes() == 0 {
		t.Error("transfer did not progress")
	}
}

func TestSessionStopHaltsReporting(t *testing.T) {
	k, s := newLoopSession(t, sim.Second)
	if err := s.Start(0); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(3 * sim.Second); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	n := len(s.Reports())
	if err := k.RunUntil(8 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Reports()); got != n {
		t.Errorf("reports kept accruing after Stop: %d -> %d", n, got)
	}
}

func TestSessionValidation(t *testing.T) {
	k := sim.New()
	link, err := netem.NewLink(k, "l", 1e6, 0, netem.NewDropTail(16), &netem.Sink{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(k, tcp.DefaultConfig(), 1, link, link, nil, 0); err == nil {
		t.Error("nil account accepted")
	}
	if _, err := NewSession(k, tcp.Config{}, 1, link, link, trace.NewFlowAccount(), 0); err == nil {
		t.Error("invalid tcp config accepted")
	}
	s, err := NewSession(k, tcp.DefaultConfig(), 7, link, link, trace.NewFlowAccount(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Flow() != 7 {
		t.Errorf("flow = %d", s.Flow())
	}
	if s.Sender() == nil || s.Receiver() == nil {
		t.Error("nil endpoints")
	}
}

func TestReportMbps(t *testing.T) {
	r := Report{Start: 0, End: sim.Second, Bytes: 125000}
	if got := r.Mbps(); got != 1 {
		t.Errorf("Mbps = %g", got)
	}
	zero := Report{Start: sim.Second, End: sim.Second}
	if zero.Mbps() != 0 {
		t.Error("zero-span report should be 0")
	}
}
