// Package iperf is the workload generator of the paper's test-bed (§4.2):
// bulk TCP sessions with periodic interval reports, mirroring how Iperf
// 1.7.0 was used to generate legitimate flows and measure their throughput.
// A Session owns one tcp.Sender/tcp.Receiver pair plus a sampling timer that
// snapshots delivered bytes per interval.
package iperf

import (
	"errors"
	"fmt"

	"pulsedos/internal/netem"
	"pulsedos/internal/sim"
	"pulsedos/internal/tcp"
	"pulsedos/internal/trace"
)

// Report is one interval line, the analogue of iperf's "-i" output.
type Report struct {
	Start sim.Time
	End   sim.Time
	Bytes uint64
}

// Mbps reports the interval's average goodput in megabits per second.
func (r Report) Mbps() float64 {
	span := r.End.Sub(r.Start).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / span / 1e6
}

// Session is one iperf-style TCP transfer.
type Session struct {
	k        *sim.Kernel
	flow     int
	sender   *tcp.Sender
	receiver *tcp.Receiver
	account  *trace.FlowAccount
	interval sim.Time

	reports   []Report
	lastBytes uint64
	lastTick  sim.Time
	ticker    sim.Timer
	tickFn    func() // prebuilt interval callback
}

// NewSession wires a bulk transfer for flow over the given first-hop links:
// fwd carries data toward the receiver, rev carries ACKs back. account
// records goodput (shared across sessions is fine). interval sets the report
// cadence; zero disables interval reporting.
func NewSession(
	k *sim.Kernel,
	cfg tcp.Config,
	flow int,
	fwd, rev *netem.Link,
	account *trace.FlowAccount,
	interval sim.Time,
) (*Session, error) {
	if account == nil {
		return nil, errors.New("iperf: nil flow account")
	}
	sender, err := tcp.NewSender(k, cfg, flow, fwd)
	if err != nil {
		return nil, fmt.Errorf("iperf: flow %d: %w", flow, err)
	}
	receiver, err := tcp.NewReceiver(k, cfg, flow, rev, account)
	if err != nil {
		return nil, fmt.Errorf("iperf: flow %d: %w", flow, err)
	}
	s := &Session{
		k:        k,
		flow:     flow,
		sender:   sender,
		receiver: receiver,
		account:  account,
		interval: interval,
	}
	s.tickFn = s.report
	return s, nil
}

// Flow reports the session's flow id.
func (s *Session) Flow() int { return s.flow }

// LimitBytes turns the session into a finite transfer of approximately n
// payload bytes (rounded up to whole segments), like iperf's -n flag. Must
// be called before Start.
func (s *Session) LimitBytes(n int64, mss int) {
	if n <= 0 || mss <= 0 {
		return
	}
	segments := (n + int64(mss) - 1) / int64(mss)
	s.sender.LimitSegments(segments)
}

// Done reports whether a finite transfer has completed.
func (s *Session) Done() bool { return s.sender.Done() }

// Sender exposes the TCP source (the netem.Node ACKs must be routed to).
func (s *Session) Sender() *tcp.Sender { return s.sender }

// Receiver exposes the TCP sink (the netem.Node data must be routed to).
func (s *Session) Receiver() *tcp.Receiver { return s.receiver }

// Start begins the transfer at the given instant and arms interval
// reporting.
func (s *Session) Start(at sim.Time) error {
	if err := s.sender.Start(at); err != nil {
		return err
	}
	if s.interval > 0 {
		if _, err := s.k.At(at, func() {
			s.lastTick = s.k.Now()
			s.lastBytes = s.account.Flow(s.flow)
			s.tick()
		}); err != nil {
			return fmt.Errorf("iperf: flow %d reports: %w", s.flow, err)
		}
	}
	return nil
}

// Stop halts the sender and reporting.
func (s *Session) Stop() {
	s.sender.Stop()
	s.ticker.Cancel()
}

// tick arms the next interval report.
func (s *Session) tick() {
	s.ticker = s.k.AfterTicks(s.interval, s.tickFn)
}

// report emits one interval report and re-arms.
func (s *Session) report() {
	now := s.k.Now()
	bytes := s.account.Flow(s.flow)
	s.reports = append(s.reports, Report{
		Start: s.lastTick,
		End:   now,
		Bytes: bytes - s.lastBytes,
	})
	s.lastTick = now
	s.lastBytes = bytes
	s.tick()
}

// Reports returns a copy of the interval reports so far.
func (s *Session) Reports() []Report {
	out := make([]Report, len(s.reports))
	copy(out, s.reports)
	return out
}

// TotalBytes reports the session's delivered in-order bytes.
func (s *Session) TotalBytes() uint64 {
	return s.account.Flow(s.flow)
}
