package runcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// key derives a distinct valid store key from any label.
func key(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

func open(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIsKey(t *testing.T) {
	if !IsKey(key("x")) {
		t.Error("sha256 hex should be a key")
	}
	for _, bad := range []string{"", "abc", key("x")[:63], key("x") + "0",
		"ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789ABCDEF0123456789",
		"../../../../../../etc/passwd012345678901234567890123456789012345"} {
		if IsKey(bad) {
			t.Errorf("IsKey(%q) = true", bad)
		}
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	files := map[string][]byte{
		"result.json": []byte(`{"delivered":42}`),
		"rate.csv":    []byte("bin,bytes\n0,1000\n"),
	}
	k := key("round-trip")
	if err := s.Put(k, "demo", "engine/1", files); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("fresh entry missed")
	}
	if len(got) != 2 || !bytes.Equal(got["result.json"], files["result.json"]) || !bytes.Equal(got["rate.csv"], files["rate.csv"]) {
		t.Fatalf("artifacts corrupted in round trip: %v", got)
	}
	if _, ok := got[manifestName]; ok {
		t.Error("manifest leaked into artifacts")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats after one hit: %+v", st)
	}
	if _, ok := s.Get(key("absent")); ok {
		t.Error("absent key hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Errorf("miss not counted: %+v", st)
	}
}

func TestReopenKeepsEntries(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	k := key("persist")
	if err := s.Put(k, "", "", map[string][]byte{"a": []byte("alpha")}); err != nil {
		t.Fatal(err)
	}
	s2 := open(t, dir, 0)
	got, ok := s2.Get(k)
	if !ok || string(got["a"]) != "alpha" {
		t.Fatalf("entry lost across reopen: %v %v", got, ok)
	}
}

func TestCorruptEntrySelfHeals(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
	}{
		{"truncated artifact", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "a"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped bytes", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, "a"), []byte("XXXXX"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing artifact", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, "a")); err != nil {
				t.Fatal(err)
			}
		}},
		{"bad manifest JSON", func(t *testing.T, dir string) {
			if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"missing manifest", func(t *testing.T, dir string) {
			if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			s := open(t, root, 0)
			k := key(tc.name)
			if err := s.Put(k, "", "", map[string][]byte{"a": []byte("alpha")}); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, filepath.Join(root, k))
			if _, ok := s.Get(k); ok {
				t.Fatal("corrupt entry served")
			}
			if _, err := os.Stat(filepath.Join(root, k)); !os.IsNotExist(err) {
				t.Errorf("corrupt entry not removed from disk: %v", err)
			}
			// Recompute path: a fresh Put must land cleanly afterward.
			if err := s.Put(k, "", "", map[string][]byte{"a": []byte("alpha")}); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(k); !ok || string(got["a"]) != "alpha" {
				t.Fatal("recomputed entry not served")
			}
		})
	}
}

func TestOpenRemovesCorruptAndTempDirs(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, 0)
	k := key("healthy")
	if err := s.Put(k, "", "", map[string][]byte{"a": []byte("alpha")}); err != nil {
		t.Fatal(err)
	}
	bad := key("corrupt")
	if err := os.MkdirAll(filepath.Join(dir, bad), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, bad, manifestName), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, tmpPrefix+"stray"), 0o755); err != nil {
		t.Fatal(err)
	}

	s2 := open(t, dir, 0)
	if _, ok := s2.Get(k); !ok {
		t.Error("healthy entry lost on reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, bad)); !os.IsNotExist(err) {
		t.Error("corrupt entry survived reopen")
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"stray")); !os.IsNotExist(err) {
		t.Error("stray temp dir survived reopen")
	}
	if st := s2.Stats(); st.Entries != 1 {
		t.Errorf("entries after reopen: %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Each entry is ~payload + manifest; size the budget for about two.
	payload := bytes.Repeat([]byte("x"), 4096)
	s := open(t, t.TempDir(), 11<<10)
	k1, k2, k3 := key("e1"), key("e2"), key("e3")
	for _, k := range []string{k1, k2, k3} {
		if err := s.Put(k, "", "", map[string][]byte{"blob": payload}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 2-entry budget: %+v", st)
	}
	if st.Bytes > 11<<10 {
		t.Errorf("byte budget exceeded: %+v", st)
	}
	if _, ok := s.Get(k1); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := s.Get(k3); !ok {
		t.Error("newest entry evicted")
	}

	// Recency ordering: touching k2 must make k3 the eviction victim.
	if _, ok := s.Get(k2); !ok {
		t.Fatal("k2 missing before recency check")
	}
	if err := s.Put(key("e4"), "", "", map[string][]byte{"blob": payload}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k2); !ok {
		t.Error("recently touched entry evicted before stale one")
	}
	if _, ok := s.Get(k3); ok {
		t.Error("stale entry survived over recently touched one")
	}
}

func TestOversizedEntryNotPersisted(t *testing.T) {
	s := open(t, t.TempDir(), 1024)
	k := key("huge")
	if err := s.Put(k, "", "", map[string][]byte{"blob": bytes.Repeat([]byte("x"), 4096)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("entry bigger than the whole budget was persisted")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after oversized put: %+v", st)
	}
}

func TestGetOrComputeSingleflight(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	k := key("flight")
	var computes atomic.Int64
	release := make(chan struct{})
	compute := func() (map[string][]byte, error) {
		computes.Add(1)
		<-release
		return map[string][]byte{"r": []byte("result")}, nil
	}
	const waiters = 8
	var wg sync.WaitGroup
	hits := make([]bool, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			files, hit, err := s.GetOrCompute(k, "demo", "engine/1", compute)
			hits[i], errs[i] = hit, err
			if err == nil && string(files["r"]) != "result" {
				errs[i] = fmt.Errorf("wrong artifact %q", files["r"])
			}
		}(i)
	}
	// Hold the compute open until it has definitely started; waiters that
	// arrive while it runs must join the flight, and any that arrive after
	// it lands hit the disk entry — either way the compute runs once.
	for computes.Load() == 0 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times for one key", n)
	}
	misses := 0
	for _, h := range hits {
		if !h {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d waiters computed; want exactly 1", misses)
	}
	// The flight's result was persisted: a later Get hits disk.
	if _, ok := s.Get(k); !ok {
		t.Error("flight result not persisted")
	}
}

func TestGetOrComputeErrorShared(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	k := key("boom")
	wantErr := fmt.Errorf("scenario exploded")
	_, hit, err := s.GetOrCompute(k, "", "", func() (map[string][]byte, error) { return nil, wantErr })
	if hit || err == nil || err.Error() != wantErr.Error() {
		t.Fatalf("error compute: hit=%v err=%v", hit, err)
	}
	if _, ok := s.Get(k); ok {
		t.Error("failed compute persisted an entry")
	}
	// The key is retryable after a failure.
	files, hit, err := s.GetOrCompute(k, "", "", func() (map[string][]byte, error) {
		return map[string][]byte{"r": []byte("ok")}, nil
	})
	if err != nil || hit || string(files["r"]) != "ok" {
		t.Fatalf("retry after failure: %v %v %v", files, hit, err)
	}
}

func TestPutRejectsMalformedInput(t *testing.T) {
	s := open(t, t.TempDir(), 0)
	if err := s.Put("not-a-key", "", "", map[string][]byte{"a": nil}); err == nil {
		t.Error("malformed key accepted")
	}
	if err := s.Put(key("empty"), "", "", nil); err == nil {
		t.Error("empty artifact set accepted")
	}
	for _, bad := range []string{manifestName, "../escape", "a/b", ""} {
		if err := s.Put(key("bad-name"), "", "", map[string][]byte{bad: []byte("x")}); err == nil {
			t.Errorf("illegal artifact name %q accepted", bad)
		}
	}
}
