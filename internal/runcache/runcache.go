// Package runcache is a content-addressed on-disk store for memoized
// scenario results. Determinism is lint-enforced across the simulation
// packages (DESIGN.md §10), which makes a run's artifacts a pure function of
// (canonical scenario document, engine version); the caller hashes that pair
// into a 64-hex-character key (scenario.Key) and this package maps the key to
// the artifacts the run produced.
//
// Layout: one directory per key under the store root,
//
//	<root>/<key>/manifest.json   — key, label, engine version, file digests
//	<root>/<key>/<artifact>      — e.g. result.json, rate.csv, series.csv
//
// Guarantees:
//
//   - Singleflight: concurrent GetOrCompute calls for the same key run the
//     compute function once; the rest wait and share the result.
//   - LRU byte budget: the store never holds more than MaxBytes of artifacts
//     on disk; least-recently-used entries are evicted on insert. An entry
//     larger than the whole budget is returned to the caller but never
//     persisted.
//   - Self-healing: a missing, unparsable, or digest-mismatched entry is
//     deleted and reported as a miss — the store recomputes rather than ever
//     serving bytes it cannot prove it wrote.
//
// The returned artifact maps share backing arrays between waiters of one
// flight; callers must treat them as immutable.
package runcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pulsedos/internal/perf/clock"
)

// manifestName is the per-entry metadata file. It is not an artifact: Get
// never returns it and its bytes still count toward the byte budget.
const manifestName = "manifest.json"

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Hits      uint64 `json:"hits"`      // disk hits + deduplicated in-flight joins
	Misses    uint64 `json:"misses"`    // absent or self-healed entries
	Evictions uint64 `json:"evictions"` // entries removed by the LRU byte budget
	Deduped   uint64 `json:"deduped"`   // subset of Hits served by joining an in-flight compute
	Entries   int    `json:"entries"`   // entries currently on disk
	Bytes     int64  `json:"bytes"`     // artifact + manifest bytes currently on disk
}

// Store is a content-addressed artifact cache rooted at one directory.
// All methods are safe for concurrent use.
type Store struct {
	root     string
	maxBytes int64

	mu        sync.Mutex
	entries   map[string]*entry
	lru       *list.List // front = most recently used
	bytes     int64
	hits      uint64
	misses    uint64
	evictions uint64
	deduped   uint64
	flights   map[string]*flight
}

// entry is one on-disk key directory the store believes is intact.
type entry struct {
	key   string
	bytes int64
	elem  *list.Element
}

// flight is one in-progress computation other submitters can join.
type flight struct {
	done  chan struct{}
	files map[string][]byte
	err   error
}

// manifest is the JSON shape of manifest.json.
type manifest struct {
	Key           string      `json:"key"`
	Label         string      `json:"label,omitempty"`
	EngineVersion string      `json:"engine_version,omitempty"`
	CreatedUnix   int64       `json:"created_unix"`
	Files         []fileEntry `json:"files"`
}

type fileEntry struct {
	Name   string `json:"name"`
	Bytes  int64  `json:"bytes"`
	SHA256 string `json:"sha256"`
}

// IsKey reports whether s has the shape of a store key: 64 lowercase hex
// characters (a SHA-256 digest), which is also what makes it a safe
// single-segment directory name.
func IsKey(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Open creates or reopens a store rooted at dir. maxBytes <= 0 disables the
// byte budget. Existing entries are re-indexed (oldest-created = first
// evicted; access recency is tracked in memory only) and anything that fails
// verification is removed on the spot.
func Open(dir string, maxBytes int64) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: open: %w", err)
	}
	s := &Store{
		root:     dir,
		maxBytes: maxBytes,
		entries:  make(map[string]*entry),
		lru:      list.New(),
		flights:  make(map[string]*flight),
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("runcache: open: %w", err)
	}
	type found struct {
		key     string
		bytes   int64
		created int64
	}
	var kept []found
	for _, de := range dirents {
		name := de.Name()
		if !de.IsDir() {
			continue
		}
		if !IsKey(name) {
			// Leftover temp dir from an interrupted Put, or foreign junk
			// someone dropped in the root: temp dirs are ours to clean.
			if strings.HasPrefix(name, tmpPrefix) {
				os.RemoveAll(filepath.Join(dir, name))
			}
			continue
		}
		m, n, err := verifyEntry(filepath.Join(dir, name), name)
		if err != nil {
			os.RemoveAll(filepath.Join(dir, name))
			continue
		}
		kept = append(kept, found{key: name, bytes: n, created: m.CreatedUnix})
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].created != kept[j].created {
			return kept[i].created < kept[j].created
		}
		return kept[i].key < kept[j].key
	})
	for _, f := range kept {
		e := &entry{key: f.key, bytes: f.bytes}
		e.elem = s.lru.PushFront(e)
		s.entries[f.key] = e
		s.bytes += f.bytes
	}
	s.mu.Lock()
	s.evictToFitLocked(0)
	s.mu.Unlock()
	return s, nil
}

// Root reports the store's on-disk root directory.
func (s *Store) Root() string { return s.root }

// Stats snapshots the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
		Deduped:   s.deduped,
		Entries:   len(s.entries),
		Bytes:     s.bytes,
	}
}

// Get returns the artifacts stored under key, or (nil, false) on a miss. A
// corrupt entry — unreadable manifest, missing file, digest mismatch — is
// deleted and reported as a miss.
func (s *Store) Get(key string) (map[string][]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getLocked(key)
}

func (s *Store) getLocked(key string) (map[string][]byte, bool) {
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	files, err := s.loadEntry(key)
	if err != nil {
		s.dropLocked(e)
		s.misses++
		return nil, false
	}
	s.lru.MoveToFront(e.elem)
	s.hits++
	return files, true
}

// loadEntry reads and verifies one entry's artifacts.
func (s *Store) loadEntry(key string) (map[string][]byte, error) {
	dir := filepath.Join(s.root, key)
	m, _, err := verifyEntry(dir, key)
	if err != nil {
		return nil, err
	}
	files := make(map[string][]byte, len(m.Files))
	for _, fe := range m.Files {
		data, err := os.ReadFile(filepath.Join(dir, fe.Name))
		if err != nil {
			return nil, err
		}
		files[fe.Name] = data
	}
	return files, nil
}

// verifyEntry checks an entry directory end to end: parsable manifest with
// the expected key, every listed artifact present with the recorded size and
// SHA-256. Returns the manifest and the entry's total on-disk bytes
// (artifacts + manifest).
func verifyEntry(dir, key string) (manifest, int64, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return manifest{}, 0, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, 0, fmt.Errorf("runcache: manifest: %w", err)
	}
	if m.Key != key {
		return manifest{}, 0, fmt.Errorf("runcache: manifest key %q under directory %q", m.Key, key)
	}
	total := int64(len(raw))
	for _, fe := range m.Files {
		if fe.Name == manifestName || fe.Name != filepath.Base(fe.Name) || fe.Name == "." {
			return manifest{}, 0, fmt.Errorf("runcache: manifest lists illegal artifact name %q", fe.Name)
		}
		data, err := os.ReadFile(filepath.Join(dir, fe.Name))
		if err != nil {
			return manifest{}, 0, err
		}
		if int64(len(data)) != fe.Bytes {
			return manifest{}, 0, fmt.Errorf("runcache: %s: %d bytes, manifest says %d", fe.Name, len(data), fe.Bytes)
		}
		if sum := sha256.Sum256(data); hex.EncodeToString(sum[:]) != fe.SHA256 {
			return manifest{}, 0, fmt.Errorf("runcache: %s: content digest mismatch", fe.Name)
		}
		total += fe.Bytes
	}
	return m, total, nil
}

// tmpPrefix marks in-progress entry directories; Open sweeps strays.
const tmpPrefix = ".tmp-"

// Put stores files under key, replacing any existing entry and evicting
// least-recently-used entries until the byte budget holds. An entry bigger
// than the whole budget is silently not persisted (the result is still
// correct — the cache just stays cold for it).
func (s *Store) Put(key, label, engineVersion string, files map[string][]byte) error {
	if !IsKey(key) {
		return fmt.Errorf("runcache: put: malformed key %q", key)
	}
	if len(files) == 0 {
		return errors.New("runcache: put: no artifacts")
	}
	names := make([]string, 0, len(files))
	for name := range files { //pdos:nondeterministic-ok — names are sorted before any ordered use
		names = append(names, name)
	}
	sort.Strings(names)
	m := manifest{
		Key:           key,
		Label:         label,
		EngineVersion: engineVersion,
		CreatedUnix:   clock.Wall.Now().Unix(), //pdos:wallclock — cache bookkeeping (eviction age), never simulation state
	}
	var total int64
	for _, name := range names {
		if name == manifestName || name != filepath.Base(name) || name == "." || name == "" {
			return fmt.Errorf("runcache: put: illegal artifact name %q", name)
		}
		data := files[name]
		sum := sha256.Sum256(data)
		m.Files = append(m.Files, fileEntry{Name: name, Bytes: int64(len(data)), SHA256: hex.EncodeToString(sum[:])})
		total += int64(len(data))
	}
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("runcache: put: %w", err)
	}
	raw = append(raw, '\n')
	total += int64(len(raw))
	if s.maxBytes > 0 && total > s.maxBytes {
		return nil
	}

	// Build the entry in a temp directory, then swap it in under the lock so
	// readers never observe a half-written entry.
	tmp, err := os.MkdirTemp(s.root, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("runcache: put: %w", err)
	}
	cleanup := true
	defer func() {
		if cleanup {
			os.RemoveAll(tmp)
		}
	}()
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(tmp, name), files[name], 0o644); err != nil {
			return fmt.Errorf("runcache: put: %w", err)
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), raw, 0o644); err != nil {
		return fmt.Errorf("runcache: put: %w", err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.entries[key]; ok {
		s.dropLocked(old)
	}
	s.evictToFitLocked(total)
	dest := filepath.Join(s.root, key)
	os.RemoveAll(dest) // dropLocked handles the indexed case; this clears unindexed leftovers
	if err := os.Rename(tmp, dest); err != nil {
		return fmt.Errorf("runcache: put: %w", err)
	}
	cleanup = false
	e := &entry{key: key, bytes: total}
	e.elem = s.lru.PushFront(e)
	s.entries[key] = e
	s.bytes += total
	return nil
}

// evictToFitLocked removes least-recently-used entries until incoming more
// bytes fit under the budget.
func (s *Store) evictToFitLocked(incoming int64) {
	if s.maxBytes <= 0 {
		return
	}
	for s.bytes+incoming > s.maxBytes {
		back := s.lru.Back()
		if back == nil {
			return
		}
		s.dropLocked(back.Value.(*entry))
		s.evictions++
	}
}

// dropLocked removes an entry from the index and from disk.
func (s *Store) dropLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.bytes -= e.bytes
	os.RemoveAll(filepath.Join(s.root, e.key))
}

// GetOrCompute returns the artifacts under key, computing and persisting
// them on a miss. Concurrent calls for one key share a single compute
// (singleflight); joiners count as hits. hit reports whether the artifacts
// came from cache or an in-flight twin rather than this call's own compute.
// A compute error is shared with every joined waiter and nothing is
// persisted; a persistence failure is swallowed — the computed artifacts are
// still returned, the cache merely stays cold for that key.
func (s *Store) GetOrCompute(key, label, engineVersion string, compute func() (map[string][]byte, error)) (files map[string][]byte, hit bool, err error) {
	if !IsKey(key) {
		return nil, false, fmt.Errorf("runcache: malformed key %q", key)
	}
	s.mu.Lock()
	if files, ok := s.getLocked(key); ok {
		s.mu.Unlock()
		return files, true, nil
	}
	if f, ok := s.flights[key]; ok {
		s.hits++
		s.deduped++
		s.mu.Unlock()
		<-f.done
		return f.files, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	files, err = compute()
	if err == nil {
		s.Put(key, label, engineVersion, files)
	}
	f.files, f.err = files, err
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return files, false, err
}
