package sim

import "math/bits"

// Hierarchical timing wheel (Varghese & Lauck), tuned for the simulator's
// event-horizon profile: packet transmissions land microseconds out, RTT
// echoes and pulse periods land milliseconds-to-seconds out, and RTO timers
// land up to a minute out.
//
// Geometry: three levels of 256 slots. Level 0 buckets events by 2^10 ns
// (1.024 µs) ticks, level 1 by 2^18 ns (262 µs), level 2 by 2^26 ns (67 ms),
// giving the wheel a 2^34 ns (~17.2 s) horizon past its floor. Events beyond
// the horizon — or behind the floor, which only happens to events displaced
// by a slot drain — live in the kernel's 4-ary heap.
//
// Ordering contract. The kernel's observable firing order is exactly
// (when, seq), identical to a pure heap. Slot bucketing coarsens nothing:
// locate() never returns an event straight out of a slot holding more than
// one event — it drains such slots into the heap first, and the heap restores
// the total order. The one slot-direct path (a single-event slot) compares
// that event against the heap minimum with the full (when, seq) predicate
// before choosing it. See DESIGN.md §8 for the equivalence argument.
//
// Mapping. Instead of per-level offset counters, slots are addressed by the
// absolute instant: level l holds instants within the floor's level-l epoch
// (the aligned 2^(shift[l]+8) window containing the floor), and an event at
// t occupies slot (t >> shift[l]) & 255. Within an epoch this is injective
// and wraparound-free, so a slot never mixes instants from different laps —
// the classic wheel's "rounds remaining" counter disappears entirely, and
// the epoch test is a pair of shifts: t and floor share a level-l epoch iff
// t>>(shift[l]+8) == floor>>(shift[l]+8).
const (
	wheelLevels = 3
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	tickShift   = 10 // level-0 tick: 2^10 ns
	l1Shift     = tickShift + wheelBits
	l2Shift     = tickShift + 2*wheelBits
	horizonLog2 = tickShift + 3*wheelBits // wheel horizon: 2^34 ns past the epoch base
)

// levelShift[l] is the log2 of level l's slot width in nanoseconds.
var levelShift = [wheelLevels]uint{tickShift, l1Shift, l2Shift}

// setFloor moves the wheel's mapping origin to t. The caller guarantees no
// wheel-resident event is behind t.
func (k *Kernel) setFloor(t Time) {
	k.floor = t
}

// place links ev into the wheel slot covering ev.when, or pushes it to the
// heap when ev.when lies beyond the wheel horizon. The caller guarantees
// ev.when >= k.floor.
//
//pdos:hotpath
func (k *Kernel) place(ev *event) {
	t := ev.when
	f := k.floor
	var lvl int
	switch {
	case t>>l1Shift == f>>l1Shift:
		lvl = 0
	case t>>l2Shift == f>>l2Shift:
		lvl = 1
	case t>>horizonLog2 == f>>horizonLog2:
		lvl = 2
	default:
		k.push(ev)
		return
	}
	pos := int(t>>levelShift[lvl]) & wheelMask
	ev.index = idxWheel
	ev.slot = int32(lvl<<wheelBits | pos)
	head := k.wheel[lvl][pos]
	ev.next = head
	ev.prev = nil
	if head != nil {
		head.prev = ev
	}
	k.wheel[lvl][pos] = ev
	k.occupied[lvl][pos>>6] |= 1 << (pos & 63)
	k.wheelCount++
	if lvl > 0 {
		k.upperCount++
	}
}

// unschedule removes a pending event from wherever it lives — heap or wheel
// slot — without releasing it. Wheel removal is O(1): unlink from the slot's
// intrusive list and clear the occupancy bit if the slot empties.
//
//pdos:hotpath
func (k *Kernel) unschedule(ev *event) {
	k.pending-- //pdos:counter kernel-pending dec — the event leaves the pending set (fire or cancel)
	k.solo = nil
	if ev.index >= 0 {
		k.remove(int(ev.index))
		return
	}
	lvl := int(ev.slot) >> wheelBits
	pos := int(ev.slot) & wheelMask
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		k.wheel[lvl][pos] = ev.next
		if ev.next == nil {
			k.occupied[lvl][pos>>6] &^= 1 << (pos & 63)
		}
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	}
	ev.next = nil
	ev.prev = nil
	ev.index = idxNone
	ev.slot = -1
	k.wheelCount--
	if lvl > 0 {
		k.upperCount--
	}
}

// scanFrom returns the first occupied slot of level lvl at position >= from,
// using the occupancy bitmap to skip empty runs a word at a time.
//
//pdos:hotpath
func (k *Kernel) scanFrom(lvl, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	occ := &k.occupied[lvl]
	w := from >> 6
	word := occ[w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		w++
		if w >= len(occ) {
			return 0, false
		}
		word = occ[w]
	}
}

// drainSlot empties a due level-0 slot into the heap, which restores the
// exact (when, seq) order among its events and anything already heaped.
//
//pdos:hotpath
func (k *Kernel) drainSlot(lvl, pos int) {
	ev := k.wheel[lvl][pos]
	k.wheel[lvl][pos] = nil
	k.occupied[lvl][pos>>6] &^= 1 << (pos & 63)
	for ev != nil {
		next := ev.next
		ev.next = nil
		ev.prev = nil
		ev.slot = -1
		k.wheelCount--
		k.push(ev)
		ev = next
	}
}

// cascade empties an upper-level slot and re-places each event, which by
// construction lands on a finer level: every event in the slot is within the
// current level-(lvl-1) epoch or below, whether the slot is due because the
// floor was just advanced to its base or because the floor drifted into its
// range across an epoch boundary.
//
//pdos:hotpath
func (k *Kernel) cascade(lvl, pos int) {
	ev := k.wheel[lvl][pos]
	k.wheel[lvl][pos] = nil
	k.occupied[lvl][pos>>6] &^= 1 << (pos & 63)
	for ev != nil {
		next := ev.next
		ev.next = nil
		ev.prev = nil
		ev.slot = -1
		k.wheelCount--
		k.upperCount--
		k.place(ev)
		ev = next
	}
}

// locate returns the pending event with the smallest (when, seq) without
// detaching it, advancing the wheel (draining due slots, cascading upper
// levels) as needed. It returns nil when nothing is pending. The caller
// fires or cancels the returned event before any other mutation, so the
// peeked pointer cannot go stale.
//
//pdos:hotpath
func (k *Kernel) locate() *event {
	if k.pending == 0 {
		return nil
	}
	if ev := k.solo; ev != nil {
		// Exactly one event pending: it is the minimum wherever it lives.
		// This keeps the ubiquitous one-timer-chain pattern off the scan
		// machinery entirely.
		return ev
	}
	if k.heapOnly {
		return k.events[0]
	}
	for {
		if k.wheelCount == 0 {
			// Wheel empty and pending > 0: the heap holds the minimum.
			return k.events[0]
		}
		if k.upperCount > 0 {
			// Epoch-boundary cascade: once the floor has advanced into the
			// range of an upper-level slot populated under an older floor,
			// that slot's events (all >= floor, headed for finer buckets)
			// must drop down before level 0 is consulted — some may be due
			// ahead of everything currently in level 0.
			c1 := int(k.floor>>levelShift[1]) & wheelMask
			if k.occupied[1][c1>>6]&(1<<(c1&63)) != 0 {
				k.cascade(1, c1)
				continue
			}
			c2 := int(k.floor>>levelShift[2]) & wheelMask
			if k.occupied[2][c2>>6]&(1<<(c2&63)) != 0 {
				k.cascade(2, c2)
				continue
			}
		}
		// Level 0: the slot covering the floor, onward.
		c0 := int(k.floor>>tickShift) & wheelMask
		if pos, ok := k.scanFrom(0, c0); ok {
			base := k.floor&^(1<<levelShift[1]-1) | Time(pos)<<tickShift
			bound := base
			if bound < k.floor {
				bound = k.floor // pos == c0: the slot straddles the floor
			}
			if len(k.events) > 0 && k.events[0].when < bound {
				return k.events[0]
			}
			head := k.wheel[0][pos]
			if head.next == nil {
				// Single-event slot: choose between it and the heap minimum
				// with the full (when, seq) predicate — no drain round-trip.
				if len(k.events) > 0 && k.events[0].before(head) {
					return k.events[0]
				}
				return head
			}
			k.drainSlot(0, pos)
			k.setFloor(base + 1<<tickShift)
			continue
		}
		// Level 0 exhausted: cascade the next occupied upper-level slot.
		// Scanning starts past the slot covering the floor — level l accepts
		// only instants at or beyond epochEnd[l-1], which all map strictly
		// past that slot, so it is empty by construction.
		cascaded := false
		for lvl := 1; lvl < wheelLevels; lvl++ {
			c := int(k.floor>>levelShift[lvl]) & wheelMask
			pos, ok := k.scanFrom(lvl, c+1)
			if !ok {
				continue
			}
			base := k.floor&^(1<<(levelShift[lvl]+wheelBits)-1) | Time(pos)<<levelShift[lvl]
			if len(k.events) > 0 && k.events[0].when < base {
				return k.events[0]
			}
			k.setFloor(base)
			k.cascade(lvl, pos)
			cascaded = true
			break
		}
		if !cascaded {
			// wheelCount > 0 yet every level scan came up empty — the
			// occupancy accounting is corrupt. Fail loudly: silent
			// misordering would poison every downstream trace.
			panic("sim: timer wheel occupancy corrupted")
		}
	}
}
