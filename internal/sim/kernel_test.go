package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want Time
	}{
		{"zero", 0, 0},
		{"one second", 1, Second},
		{"fifty ms", 0.05, 50 * Millisecond},
		{"microsecond", 1e-6, Microsecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromSeconds(tt.in); got != tt.want {
				t.Errorf("FromSeconds(%g) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if got := FromDuration(1500 * time.Millisecond); got != 1500*Millisecond {
		t.Errorf("FromDuration = %v", got)
	}
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds = %g", got)
	}
	if got := (3 * Second).Duration(); got != 3*time.Second {
		t.Errorf("Duration = %v", got)
	}
}

func TestTimeComparisons(t *testing.T) {
	a, b := Second, 2*Second
	if !a.Before(b) || b.Before(a) {
		t.Error("Before misordered")
	}
	if !b.After(a) || a.After(b) {
		t.Error("After misordered")
	}
	if a.Add(Second) != b {
		t.Error("Add broken")
	}
	if b.Sub(a) != Second {
		t.Error("Sub broken")
	}
	if (1500 * Millisecond).String() != "1.5s" {
		t.Errorf("String = %q", (1500 * Millisecond).String())
	}
}

func TestKernelOrdering(t *testing.T) {
	k := New()
	var got []int
	k.AfterTicks(3*Second, func() { got = append(got, 3) })
	k.AfterTicks(1*Second, func() { got = append(got, 1) })
	k.AfterTicks(2*Second, func() { got = append(got, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if k.Now() != 3*Second {
		t.Errorf("final time = %v", k.Now())
	}
}

func TestKernelFIFOTies(t *testing.T) {
	k := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.AfterTicks(Second, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestKernelAtPast(t *testing.T) {
	k := New()
	k.AfterTicks(Second, func() {})
	if !k.Step() {
		t.Fatal("no event")
	}
	if _, err := k.At(0, func() {}); !errors.Is(err, ErrPastTime) {
		t.Errorf("At(past) error = %v, want ErrPastTime", err)
	}
	// After with negative delay clamps to now instead of failing.
	fired := false
	k.After(-time.Second, func() { fired = true })
	k.Run()
	if !fired {
		t.Error("clamped After never fired")
	}
}

func TestTimerCancel(t *testing.T) {
	k := New()
	fired := false
	tm := k.AfterTicks(Second, func() { fired = true })
	if !tm.Active() {
		t.Error("timer should be active")
	}
	if !tm.Cancel() {
		t.Error("first cancel should report true")
	}
	if tm.Cancel() {
		t.Error("second cancel should report false")
	}
	if tm.Active() {
		t.Error("cancelled timer still active")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if tm.When() != Second {
		t.Errorf("When = %v", tm.When())
	}
}

func TestTimerCancelInterleaved(t *testing.T) {
	// Cancel one of several same-instant events from within another event.
	k := New()
	var got []string
	var tb Timer
	k.AfterTicks(Second, func() {
		got = append(got, "a")
		tb.Cancel()
	})
	tb = k.AfterTicks(Second, func() { got = append(got, "b") })
	k.AfterTicks(Second, func() { got = append(got, "c") })
	k.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("got %v, want [a c]", got)
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	if tm.Active() {
		t.Error("zero timer reports active")
	}
	if tm.Cancel() {
		t.Error("zero timer cancel reported true")
	}
	if tm.When() != 0 {
		t.Errorf("zero timer When = %v", tm.When())
	}
}

// TestAfterTicksOverflow: a delta that would wrap now+delta negative must
// clamp to MaxTime and hand back a live, cancellable timer instead of a dead
// handle (the old kernel silently returned an inert &Timer{}).
func TestAfterTicksOverflow(t *testing.T) {
	k := New()
	k.AfterTicks(Second, func() {})
	if !k.Step() {
		t.Fatal("no event")
	}
	tm := k.AfterTicks(MaxTime, func() {})
	if !tm.Active() {
		t.Fatal("overflowing AfterTicks returned a dead timer")
	}
	if tm.When() != MaxTime {
		t.Errorf("When = %v, want MaxTime", tm.When())
	}
	if !tm.Cancel() {
		t.Error("clamped timer not cancellable")
	}
	// Saturation at the boundary: scheduling from MaxTime itself stays put.
	k2 := New()
	tm2 := k2.AfterTicks(MaxTime, func() {})
	if tm2.When() != MaxTime {
		t.Fatalf("When = %v", tm2.When())
	}
}

// TestTimerStaleHandle: once an event has fired, its struct may be recycled
// for a new event; the old handle must stay dead and must not cancel the new
// occupant.
func TestTimerStaleHandle(t *testing.T) {
	k := New()
	fired := 0
	t1 := k.AfterTicks(Second, func() { fired++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if t1.Active() {
		t.Error("fired timer still active")
	}
	// The recycled struct now backs t2.
	t2 := k.AfterTicks(Second, func() { fired++ })
	if t1.Cancel() {
		t.Error("stale handle cancelled a recycled event")
	}
	if !t2.Active() {
		t.Error("live timer killed by stale handle")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if t1.When() != Second {
		t.Errorf("stale When = %v, want its original instant", t1.When())
	}
}

// TestAtArg exercises the closure-free scheduling variant.
func TestAtArg(t *testing.T) {
	k := New()
	var got []int
	fn := func(a any) { got = append(got, a.(int)) }
	if _, err := k.AtArg(2*Second, fn, 2); err != nil {
		t.Fatal(err)
	}
	k.AfterTicksArg(Second, fn, 1)
	tm := k.AfterTicksArg(3*Second, fn, 3)
	tm.Cancel()
	if _, err := k.AtArg(0, fn, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := New()
	var fired []int
	k.AfterTicks(1*Second, func() { fired = append(fired, 1) })
	k.AfterTicks(2*Second, func() { fired = append(fired, 2) })
	k.AfterTicks(3*Second, func() { fired = append(fired, 3) })
	if err := k.RunUntil(2 * Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v at RunUntil(2s)", fired)
	}
	if k.Now() != 2*Second {
		t.Errorf("now = %v, want exactly 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Errorf("pending = %d", k.Pending())
	}
	if err := k.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || k.Now() != 3*Second {
		t.Errorf("after RunFor: fired=%v now=%v", fired, k.Now())
	}
}

func TestEventLimit(t *testing.T) {
	k := New()
	var reschedule func()
	reschedule = func() { k.AfterTicks(Millisecond, reschedule) }
	k.AfterTicks(Millisecond, reschedule)
	k.SetEventLimit(100)
	if err := k.Run(); !errors.Is(err, ErrEventLimit) {
		t.Errorf("Run error = %v, want ErrEventLimit", err)
	}
	if k.Processed() != 100 {
		t.Errorf("processed = %d", k.Processed())
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 5 {
			k.AfterTicks(Millisecond, recurse)
		}
	}
	k.AfterTicks(0, recurse)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 5 {
		t.Errorf("depth = %d", depth)
	}
	if k.Now() != 4*Millisecond {
		t.Errorf("now = %v", k.Now())
	}
}

// TestKernelSortsArbitraryTimes is the kernel's core property: any multiset
// of scheduled instants is fired in non-decreasing order.
func TestKernelSortsArbitraryTimes(t *testing.T) {
	property := func(offsets []uint32) bool {
		k := New()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			k.AfterTicks(at, func() { fired = append(fired, k.Now()) })
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(fired) != len(offsets) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestKernelCancellationProperty: cancelling a random subset fires exactly
// the complement.
func TestKernelCancellationProperty(t *testing.T) {
	property := func(offsets []uint16, mask []bool) bool {
		k := New()
		fired := make(map[int]bool, len(offsets))
		timers := make([]Timer, len(offsets))
		for i, off := range offsets {
			i := i
			timers[i] = k.AfterTicks(Time(off)+1, func() { fired[i] = true })
		}
		cancelled := make(map[int]bool, len(offsets))
		for i := range timers {
			if i < len(mask) && mask[i] {
				timers[i].Cancel()
				cancelled[i] = true
			}
		}
		if err := k.Run(); err != nil {
			return false
		}
		for i := range offsets {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}
