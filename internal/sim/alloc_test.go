package sim

import "testing"

// warmKernel populates the free list and heap capacity so steady-state
// measurements don't see one-time slice growth.
func warmKernel(k *Kernel, fn func()) {
	for i := 0; i < 64; i++ {
		k.AfterTicks(Time(i+1), fn)
	}
	for k.Step() {
	}
}

// TestScheduleFireAllocs locks in the free-list contract: once warm, the
// schedule→fire cycle recycles event structs and allocates nothing.
func TestScheduleFireAllocs(t *testing.T) {
	k := New()
	fn := func() {}
	warmKernel(k, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterTicks(1, fn)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocates %.2f/op, want 0", allocs)
	}
}

// TestScheduleFireArgAllocs covers the argument-carrying path: boxing a
// pointer into the event's any slot must not allocate either.
func TestScheduleFireArgAllocs(t *testing.T) {
	k := New()
	argFn := func(any) {}
	warmKernel(k, func() {})
	arg := &struct{ n int }{}
	allocs := testing.AllocsPerRun(1000, func() {
		k.AfterTicksArg(1, argFn, arg)
		k.Step()
	})
	if allocs != 0 {
		t.Errorf("schedule+fire with arg allocates %.2f/op, want 0", allocs)
	}
}

// TestScheduleCancelAllocs locks in the cancel path: schedule→cancel also
// recycles through the free list without allocating.
func TestScheduleCancelAllocs(t *testing.T) {
	k := New()
	fn := func() {}
	warmKernel(k, fn)
	allocs := testing.AllocsPerRun(1000, func() {
		tm := k.AfterTicks(100, fn)
		tm.Cancel()
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel allocates %.2f/op, want 0", allocs)
	}
}
