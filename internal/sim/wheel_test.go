package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// firing is one observed callback: the instant the clock showed and the
// identity the scheduler attached. Two kernels are equivalent iff their
// firing logs are identical element for element.
type firing struct {
	at Time
	id int
}

// runProgram executes the same schedule/cancel program against k and returns
// the firing log. The program is driven by its own deterministic RNG so both
// kernels see byte-identical decisions: a mix of immediate schedules, nested
// schedules from inside callbacks, and cancellations, with offsets drawn to
// straddle every wheel boundary (tick, slot, level-1, level-2, horizon).
func runProgram(k *Kernel, seed int64, ops int) []firing {
	r := rand.New(rand.NewSource(seed))
	var log []firing
	var timers []Timer
	id := 0
	// Offset classes per wheel geometry: within a tick, within level 0,
	// level 1, level 2, and beyond the horizon (heap overflow).
	offset := func() Time {
		switch r.Intn(8) {
		case 0:
			return Time(r.Int63n(1 << tickShift)) // sub-tick
		case 1:
			return 1<<tickShift - 1 + Time(r.Int63n(3)) // tick boundary
		case 2:
			return Time(r.Int63n(1 << l1Shift)) // level 0
		case 3:
			return 1<<l1Shift - 1 + Time(r.Int63n(3)) // level-0/1 epoch boundary
		case 4:
			return Time(r.Int63n(1 << l2Shift)) // level 1
		case 5:
			return 1<<l2Shift - 1 + Time(r.Int63n(3)) // level-1/2 epoch boundary
		case 6:
			return Time(r.Int63n(1 << horizonLog2)) // level 2
		default:
			return 1<<horizonLog2 + Time(r.Int63n(1<<horizonLog2)) // heap overflow
		}
	}
	var schedule func(depth int)
	schedule = func(depth int) {
		myID := id
		id++
		tm := k.AfterTicks(offset(), func() {
			log = append(log, firing{at: k.Now(), id: myID})
			if depth < 3 && r.Intn(3) == 0 {
				schedule(depth + 1)
			}
		})
		timers = append(timers, tm)
	}
	for i := 0; i < ops; i++ {
		switch {
		case len(timers) > 0 && r.Intn(4) == 0:
			timers[r.Intn(len(timers))].Cancel()
		default:
			schedule(0)
		}
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	return log
}

// TestWheelHeapEquivalence is the golden ordering test the tentpole hangs
// on: the wheel kernel must fire the exact (when, seq) order of the pure
// heap kernel on arbitrary programs, not merely a sorted-by-time order.
func TestWheelHeapEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		gotWheel := runProgram(New(), seed, 120)
		gotHeap := runProgram(NewHeapKernel(), seed, 120)
		if len(gotWheel) != len(gotHeap) {
			t.Fatalf("seed %d: wheel fired %d events, heap %d", seed, len(gotWheel), len(gotHeap))
		}
		for i := range gotWheel {
			if gotWheel[i] != gotHeap[i] {
				t.Fatalf("seed %d: firing %d diverged: wheel %+v, heap %+v",
					seed, i, gotWheel[i], gotHeap[i])
			}
		}
	}
}

// TestWheelHeapEquivalenceProperty drives the same comparison through
// testing/quick so shrinking finds small counterexamples.
func TestWheelHeapEquivalenceProperty(t *testing.T) {
	property := func(seed int64) bool {
		w := runProgram(New(), seed, 60)
		h := runProgram(NewHeapKernel(), seed, 60)
		if len(w) != len(h) {
			return false
		}
		for i := range w {
			if w[i] != h[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestWheelResidency pins down which container each horizon class lands in:
// near events in wheel slots, beyond-horizon events in the overflow heap.
func TestWheelResidency(t *testing.T) {
	k := New()
	anchor := k.AfterTicks(0, func() {}) // pins the floor at 0
	near := k.AfterTicks(Millisecond, func() {})
	far := k.AfterTicks(30*Second, func() {}) // past the ~17.2s horizon
	if anchor.ev.index != idxWheel {
		t.Errorf("anchor event index = %d, want wheel resident", anchor.ev.index)
	}
	if near.ev.index != idxWheel {
		t.Errorf("near event index = %d, want wheel resident", near.ev.index)
	}
	if far.ev.index < 0 {
		t.Errorf("far event index = %d, want overflow heap resident", far.ev.index)
	}
	hk := NewHeapKernel()
	if tm := hk.AfterTicks(Millisecond, func() {}); tm.ev.index < 0 {
		t.Errorf("heap kernel event index = %d, want heap resident", tm.ev.index)
	}
}

// TestWheelTickBoundaryReschedule cancels and reschedules the same logical
// timer across a wheel-tick boundary: the firing instant must track the
// final schedule exactly, with no quantization to tick edges.
func TestWheelTickBoundaryReschedule(t *testing.T) {
	k := New()
	k.AfterTicks(0, func() {}) // pin the floor
	var fired []Time
	tick := Time(1) << tickShift
	tm := k.AfterTicks(tick-1, func() { fired = append(fired, k.Now()) })
	if !tm.Cancel() {
		t.Fatal("cancel before boundary failed")
	}
	tm = k.AfterTicks(tick+1, func() { fired = append(fired, k.Now()) })
	if !tm.Cancel() {
		t.Fatal("cancel after boundary failed")
	}
	final := 3*tick + 5
	k.AfterTicks(final, func() { fired = append(fired, k.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != final {
		t.Fatalf("fired = %v, want exactly [%v]", fired, final)
	}
}

// TestWheelOverflowPromotion walks one timer through every container: it is
// first scheduled beyond the horizon (heap), cancelled, rescheduled inside
// the wheel, cancelled again, and finally fired from a sub-tick reschedule.
// Each handle generation must die with its cancellation (the ABA guard from
// kernel_test.go's TestTimerStaleHandle, here crossing containers).
func TestWheelOverflowPromotion(t *testing.T) {
	k := New()
	k.AfterTicks(0, func() {}) // pin the floor
	fired := 0
	farTm := k.AfterTicks(60*Second, func() { fired++ })
	if farTm.ev.index < 0 {
		t.Fatal("beyond-horizon timer not heap resident")
	}
	if !farTm.Cancel() {
		t.Fatal("cancel of heap-resident timer failed")
	}
	nearTm := k.AfterTicks(5*Millisecond, func() { fired++ })
	if nearTm.ev.index != idxWheel {
		t.Fatal("near timer not wheel resident")
	}
	if farTm.Cancel() {
		t.Error("stale heap-era handle cancelled a wheel-resident reuse")
	}
	if !nearTm.Cancel() {
		t.Fatal("cancel of wheel-resident timer failed")
	}
	lastTm := k.AfterTicks(100, func() { fired++ })
	if nearTm.Cancel() || farTm.Cancel() {
		t.Error("stale handle cancelled the final reuse")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (only the final schedule)", fired)
	}
	if lastTm.Active() {
		t.Error("fired timer still active")
	}
}

// TestWheelEpochBoundaryOrdering schedules events clustered just before and
// after level epoch boundaries — where a buggy wheel would misfile into a
// wrapped slot — and checks the firing order is globally sorted with FIFO
// ties.
func TestWheelEpochBoundaryOrdering(t *testing.T) {
	k := New()
	k.AfterTicks(0, func() {}) // pin the floor
	var fired []Time
	record := func() { fired = append(fired, k.Now()) }
	boundaries := []Time{1 << tickShift, 1 << l1Shift, 1 << l2Shift, 1 << horizonLog2}
	for _, b := range boundaries {
		for _, d := range []Time{-2, -1, 0, 1, 2} {
			k.AfterTicks(b+d, record)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 5*len(boundaries) {
		t.Fatalf("fired %d events, want %d", len(fired), 5*len(boundaries))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("misordered at %d: %v", i, fired)
		}
	}
}

// TestWheelIdleResync: after a long idle gap the floor must snap forward so
// far-future work still lands on the cheap level-0 path and fires exactly.
func TestWheelIdleResync(t *testing.T) {
	k := New()
	var fired []Time
	k.AfterTicks(Hour(), func() { fired = append(fired, k.Now()) })
	k.RunUntil(2 * 3600 * Second)
	k.AfterTicks(Microsecond, func() { fired = append(fired, k.Now()) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{3600 * Second, 2*3600*Second + Microsecond}
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
}

// Hour returns one virtual hour; a helper, not part of the Time API.
func Hour() Time { return 3600 * Second }

// benchKernelChain measures the one-pending-timer chain — the ubiquitous
// "transmit, then schedule the next transmit" pattern.
func benchKernelChain(b *testing.B, k *Kernel) {
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			k.AfterTicks(Microsecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.AfterTicks(Microsecond, tick)
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKernelChainWheel(b *testing.B) { benchKernelChain(b, New()) }
func BenchmarkKernelChainHeap(b *testing.B)  { benchKernelChain(b, NewHeapKernel()) }

// benchKernelPending measures steady-state throughput with `pending` timers
// outstanding — the regime a many-flow simulation lives in, where the heap's
// O(log n) sift starts to cost and the wheel's O(1) insert does not.
func benchKernelPending(b *testing.B, k *Kernel, pending int) {
	r := rand.New(rand.NewSource(17))
	offsets := make([]Time, 4096)
	for i := range offsets {
		// Mix of RTT-ish and RTO-ish horizons, like a TCP population.
		offsets[i] = Time(r.Int63n(int64(200*Millisecond))) + Millisecond
	}
	n := 0
	oi := 0
	var refire func()
	refire = func() {
		n++
		if n < b.N {
			k.AfterTicks(offsets[oi&4095], refire)
			oi++
		}
	}
	for i := 0; i < pending; i++ {
		k.AfterTicks(offsets[oi&4095], refire)
		oi++
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n < b.N && k.Step() {
	}
}

func BenchmarkKernelPending10kWheel(b *testing.B) { benchKernelPending(b, New(), 10000) }
func BenchmarkKernelPending10kHeap(b *testing.B) {
	benchKernelPending(b, NewHeapKernel(), 10000)
}
