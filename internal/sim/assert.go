//go:build pdosassert

package sim

import "fmt"

// This file (with its !pdosassert twin assert_off.go) is the runtime half of
// the enforcement story in DESIGN.md §10: cheap invariant checks compiled
// into `-tags pdosassert` builds and compiled out — types empty, methods
// no-op — of normal ones. `make race-assert` runs the parallel-engine
// equivalence suites with these armed.

// AssertsEnabled reports whether this binary was built with -tags pdosassert.
const AssertsEnabled = true

// kernelAsserts carries the last fired (when, at, seq) key. The kernel's
// determinism contract — and the parallel engine's "identical to serial"
// argument — is that the fired sequence of every kernel is strictly
// increasing in lexicographic (when, at, seq): locally scheduled events can
// never violate it (seq is monotone in schedule time), so a trip means a
// boundary injection landed in a shard's past — a conservative-lookahead or
// barrier-ordering regression.
type kernelAsserts struct {
	armed    bool
	lastWhen Time
	lastAt   Time
	lastSeq  uint64
}

// assertFire checks the strict (when, at, seq) firing order.
func (k *Kernel) assertFire(ev *event) {
	a := &k.asserts
	if a.armed {
		ok := ev.when > a.lastWhen ||
			(ev.when == a.lastWhen && (ev.at > a.lastAt ||
				(ev.at == a.lastAt && ev.seq > a.lastSeq)))
		if !ok {
			panic(fmt.Sprintf(
				"sim: pdosassert: event fired out of order: (when=%d at=%d seq=%d) after (when=%d at=%d seq=%d) — a boundary injection landed in this kernel's past",
				ev.when, ev.at, ev.seq, a.lastWhen, a.lastAt, a.lastSeq))
		}
	}
	a.armed = true
	a.lastWhen, a.lastAt, a.lastSeq = ev.when, ev.at, ev.seq
}

// shardAsserts counts boundary events this shard has produced. The counter
// is written only by the shard's own goroutine during a window and read only
// by the driver at the barrier, so it needs no synchronization beyond the
// window barrier itself.
type shardAsserts struct {
	sent uint64
}

// assertSent records one boundary event buffered by this shard.
func (s *Shard) assertSent() {
	s.asserts.sent++
}

// engineAsserts counts boundary events injected by the driver.
type engineAsserts struct {
	injected uint64
}

// assertInjected records one boundary event delivered to a destination
// kernel.
func (e *Engine) assertInjected() {
	e.asserts.injected++
}

// assertConserved verifies shard-boundary conservation at the end of an
// exchange: every boundary event ever sent has been injected exactly once
// (exchange drains every outbox, so nothing may remain buffered). A mismatch
// means the barrier merge lost or duplicated a message.
func (e *Engine) assertConserved() {
	var sent, buffered uint64
	for _, s := range e.shards {
		sent += s.asserts.sent
	}
	for _, ob := range e.outboxes {
		buffered += uint64(len(ob.buf))
	}
	if sent != e.asserts.injected+buffered {
		panic(fmt.Sprintf(
			"sim: pdosassert: boundary conservation violated: %d sent != %d injected + %d buffered",
			sent, e.asserts.injected, buffered))
	}
}
