//go:build pdosassert

package sim

import (
	"strings"
	"testing"
)

// mustPanic runs fn and returns the recovered panic message, failing the
// test if fn returns normally.
func mustPanic(t *testing.T, fn func()) string {
	t.Helper()
	var msg string
	func() {
		defer func() {
			if r := recover(); r != nil {
				if s, ok := r.(string); ok {
					msg = s
				} else {
					msg = "non-string panic"
				}
			}
		}()
		fn()
		t.Fatal("expected a pdosassert panic, ran to completion")
	}()
	return msg
}

// TestAssertFireOrderViolationCaught drives the raw kernel into the exact
// situation the parallel engine must never create: a boundary injection
// whose (when, at) key lands in the kernel's already-fired past. The
// pdosassert firing-order monitor must trip.
func TestAssertFireOrderViolationCaught(t *testing.T) {
	k := New()
	// An event scheduled at instant 3 for instant 5: after it fires, the
	// kernel's last fired key is (when=5, at=3).
	if _, err := k.At(3, func() {}); err != nil {
		t.Fatal(err)
	}
	fired := false
	k.After(0, func() {}) // advance origin bookkeeping deterministically
	if err := k.RunUntil(3); err != nil {
		t.Fatal(err)
	}
	if _, err := k.At(5, func() { fired = true }); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("setup event did not fire")
	}
	// A foreign injection for the same instant 5 but stamped at=0 sorts
	// BEFORE the event that already fired — a serial kernel would have run
	// it first, so firing it now is a determinism violation.
	if err := k.InjectArg(5, 0, func(any) {}, nil); err != nil {
		t.Fatal(err)
	}
	msg := mustPanic(t, func() { _ = k.Run() })
	if !strings.Contains(msg, "fired out of order") {
		t.Fatalf("wrong panic: %q", msg)
	}
}

// TestAssertFireOrderCleanRun pins the other side: ordinary scheduling —
// including same-instant ties and callback-time rescheduling — never trips
// the monitor.
func TestAssertFireOrderCleanRun(t *testing.T) {
	k := New()
	n := 0
	for i := 0; i < 100; i++ {
		k.AfterTicks(Time(i%7)*Millisecond, func() { n++ })
	}
	k.AfterTicks(Millisecond, func() {
		k.AfterTicks(0, func() { n++ }) // same-instant reschedule from a callback
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 101 {
		t.Fatalf("fired %d, want 101", n)
	}
}

// TestAssertBoundaryConservation runs a two-shard ping-pong and checks the
// conservation accounting stays balanced through every barrier (a mismatch
// panics inside exchange).
func TestAssertBoundaryConservation(t *testing.T) {
	e := NewEngine(2)
	a, b := e.Shard(0), e.Shard(1)
	var hops int
	var outAB, outBA *Outbox
	mk := func(s *Shard, out **Outbox) int32 {
		return s.RegisterPort(portFunc(func(k *Kernel, when, at Time, w *Payload) {
			if err := k.InjectArg(when, at, func(any) {
				hops++
				if hops < 10 {
					(*out).Send(k.Now()+Millisecond, &Payload{})
				}
			}, nil); err != nil {
				t.Error(err)
			}
		}))
	}
	pa := mk(a, &outAB)
	pb := mk(b, &outBA)
	var err error
	outAB, err = e.NewOutbox(a, b, pb, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	outBA, err = e.NewOutbox(b, a, pa, Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	a.Kernel().AfterTicks(0, func() { outAB.Send(Millisecond, &Payload{}) })
	defer e.Close()
	if err := e.RunUntil(20 * Millisecond); err != nil {
		t.Fatal(err)
	}
	if hops < 10 {
		t.Fatalf("ping-pong stalled at %d hops", hops)
	}
}

// portFunc adapts a function to the Port interface for tests.
type portFunc func(k *Kernel, when, at Time, w *Payload)

func (f portFunc) Inject(k *Kernel, when, at Time, w *Payload) { f(k, when, at, w) }
