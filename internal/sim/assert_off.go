//go:build !pdosassert

package sim

// Normal builds: the assertion layer vanishes — the embedded state is
// zero-size and every hook is an inlinable no-op. See assert.go for the
// armed versions and DESIGN.md §10 for the invariant catalog.

// AssertsEnabled reports whether this binary was built with -tags pdosassert.
const AssertsEnabled = false

type kernelAsserts struct{}

func (k *Kernel) assertFire(ev *event) {}

type shardAsserts struct{}

func (s *Shard) assertSent() {}

type engineAsserts struct{}

func (e *Engine) assertInjected() {}

func (e *Engine) assertConserved() {}
