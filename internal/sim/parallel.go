package sim

import (
	"errors"
	"fmt"
	"slices"
)

// This file implements a conservative parallel discrete-event engine: one
// topology is partitioned into shards, each shard owns a private Kernel and
// runs on its own goroutine, and the shards synchronize through lookahead
// windows derived from the minimum cross-shard propagation delay.
//
// The synchronization protocol is the classic conservative window scheme
// (Chandy/Misra lookahead with a global barrier instead of null messages):
//
//	W = min over all cross-shard edges of their minimum delay (the lookahead)
//	repeat:
//	    inject every buffered boundary event, merged in (when, at, edge, seq)
//	    order, into its destination kernel
//	    every shard runs RunBefore(T + W) concurrently   — the window
//	    barrier; T = T + W
//
// A shard executing inside window [T, T+W) can only create boundary events
// for instants >= T+W, because every cross-shard edge imposes at least W of
// delay. So no shard can ever receive an event for its own past — the merge
// at the next barrier is always safe, with no rollback machinery.
//
// Determinism is a hard contract: a sharded run must reproduce the serial
// kernel's observable behaviour exactly, at any worker count. The mechanism
// is the (when, at, seq) comparator in kernel.go — boundary events carry the
// virtual instant they were scheduled in the source shard ("at"), which is
// precisely the key the serial kernel's monotone seq counter encodes. The
// only residual freedom is the order of two boundary events with identical
// (when, at) arriving over different edges, which the merge breaks by edge
// id; the serial kernel would have broken it by the relative execution order
// of the two source events at that instant. Real topologies make such exact
// ties vanishingly rare (delays differ per flow), and the randomized
// equivalence tests pin the contract end to end.

// ErrNoLookahead is returned when a cross-shard edge declares a non-positive
// minimum delay: conservative synchronization requires strictly positive
// lookahead on every boundary edge.
var ErrNoLookahead = errors.New("sim: cross-shard edge with non-positive lookahead")

// Payload is the fixed-size boundary-event body. Models pack their
// cross-shard state (the netem layer packs a Packet) into the words; the
// engine never interprets them.
type Payload [6]uint64

// Port is the typed landing point for boundary events on a destination
// shard. Inject must schedule the decoded event on k via k.InjectArg with
// the provided (when, at) stamps; it runs on the engine's driver goroutine
// between windows, never concurrently with shard execution.
type Port interface {
	Inject(k *Kernel, when, at Time, w *Payload)
}

// Msg is one boundary event in flight between two shards.
type Msg struct {
	When Time    // delivery instant in the destination shard
	At   Time    // schedule instant in the source shard (determinism stamp)
	Seq  uint64  // source-shard transfer counter (FIFO within an edge)
	Edge int32   // outbox id: stable tie-break across edges
	Port int32   // destination port index
	W    Payload // packed model state
}

// Outbox is the sending side of one cross-shard edge. Each outbox is a
// single-producer (its source shard's goroutine) single-consumer (the driver
// at the barrier) buffer: the source appends during a window, the driver
// drains between windows, and the window barrier is the synchronization
// point — no locks or atomics are needed.
type Outbox struct {
	s        *Shard
	dst      int
	port     int32
	edge     int32
	minDelay Time
}

// Send buffers a boundary event for delivery at `when`, stamping it with the
// source shard's current instant and transfer sequence. It must only be
// called from model code running on the source shard's kernel.
func (o *Outbox) Send(when Time, w *Payload) {
	s := o.s
	if when < s.eng.windowEnd {
		panic(fmt.Sprintf(
			"sim: conservative lookahead violated: edge %d sends for t=%d inside window ending %d",
			o.edge, when, s.eng.windowEnd))
	}
	s.assertSent()
	s.xferSeq++
	s.out[o.dst] = append(s.out[o.dst], Msg{
		When: when,
		At:   s.k.now,
		Seq:  s.xferSeq,
		Edge: o.edge,
		Port: o.port,
		W:    *w,
	})
}

// Shard is one partition of the topology: a private kernel plus the boundary
// plumbing that connects it to its peers.
type Shard struct {
	id      int
	eng     *Engine
	k       *Kernel
	ports   []Port
	xferSeq uint64
	out     [][]Msg // per destination shard, drained at the barrier

	start chan shardCmd
	done  chan error

	asserts shardAsserts // pdosassert boundary-send accounting (assert.go)
}

type shardCmd struct {
	target    Time
	inclusive bool // final window: fire events at exactly target too
}

// ID reports the shard's index within its engine.
func (s *Shard) ID() int { return s.id }

// Kernel exposes the shard's private kernel for building model components.
func (s *Shard) Kernel() *Kernel { return s.k }

// RegisterPort registers a boundary landing point and returns its index for
// use in NewOutbox on peer shards. Registration order must be deterministic
// (it is part of the merge tie-break via outbox edge ids).
func (s *Shard) RegisterPort(p Port) int32 {
	s.ports = append(s.ports, p)
	return int32(len(s.ports) - 1)
}

// run is the shard's worker loop: execute one window per command.
func (s *Shard) run() {
	for cmd := range s.start {
		var err error
		if cmd.inclusive {
			err = s.k.RunUntil(cmd.target)
		} else {
			err = s.k.RunBefore(cmd.target)
		}
		s.done <- err
	}
}

// Engine drives a set of shards through conservative lookahead windows.
// Build phase (NewEngine, RegisterPort, NewOutbox, model wiring) is
// single-goroutine; RunUntil then alternates concurrent shard windows with
// serial barrier merges. With a single shard the engine degenerates to the
// serial kernel: RunUntil forwards directly with no goroutines, channels, or
// barrier overhead.
type Engine struct {
	shards    []*Shard
	edges     int32
	lookahead Time // min over outboxes; recomputed per RunUntil
	now       Time
	windowEnd Time   // shards may not Send below this (conservative guard)
	windows   uint64 // barrier count, for diagnostics and benchmarks
	started   bool
	closed    bool
	scratch   []Msg

	asserts engineAsserts // pdosassert boundary-injection accounting (assert.go)
}

// NewEngine returns an engine with n empty shards (n >= 1), each owning a
// fresh timing-wheel kernel.
func NewEngine(n int) *Engine {
	if n < 1 {
		n = 1
	}
	e := &Engine{shards: make([]*Shard, n)}
	for i := range e.shards {
		e.shards[i] = &Shard{
			id:  i,
			eng: e,
			k:   New(),
			out: make([][]Msg, n),
		}
	}
	return e
}

// Shards reports the number of partitions.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns partition i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Now reports the engine's barrier clock: every shard's kernel has reached
// at least this instant.
func (e *Engine) Now() Time { return e.now }

// Windows reports how many barrier windows have been executed.
func (e *Engine) Windows() uint64 { return e.windows }

// Lookahead reports the conservative window width: the minimum declared
// delay over all cross-shard edges (0 until the first edge exists).
func (e *Engine) Lookahead() Time { return e.lookahead }

// Processed reports the total events fired across all shards. Because a
// boundary transfer suppresses exactly one delivery event in the source
// shard and creates exactly one in the destination, this equals the serial
// kernel's Processed for an equivalent run.
func (e *Engine) Processed() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.k.Processed()
	}
	return n
}

// Pending reports the pending events across all shards plus boundary events
// buffered for future windows.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += s.k.Pending()
		for _, buf := range s.out {
			n += len(buf)
		}
	}
	return n
}

// NewOutbox creates a cross-shard edge from src to dst, landing on dst's
// port (a RegisterPort result). minDelay is the edge's guaranteed minimum
// delivery latency — the engine's lookahead is the minimum over all edges,
// so it must be strictly positive.
func (e *Engine) NewOutbox(src, dst *Shard, port int32, minDelay Time) (*Outbox, error) {
	if minDelay <= 0 {
		return nil, ErrNoLookahead
	}
	if src.eng != e || dst.eng != e {
		return nil, errors.New("sim: outbox endpoints belong to a different engine")
	}
	if src == dst {
		return nil, errors.New("sim: outbox source and destination are the same shard")
	}
	if int(port) >= len(dst.ports) {
		return nil, fmt.Errorf("sim: destination shard %d has no port %d", dst.id, port)
	}
	o := &Outbox{s: src, dst: dst.id, port: port, edge: e.edges, minDelay: minDelay}
	e.edges++
	if e.lookahead == 0 || minDelay < e.lookahead {
		e.lookahead = minDelay
	}
	return o, nil
}

// compareMsg orders boundary events for the barrier merge: delivery instant,
// then source schedule instant (the determinism stamp), then edge id, then
// the per-edge FIFO sequence. Allocation-free under slices.SortFunc.
func compareMsg(a, b Msg) int {
	switch {
	case a.When != b.When:
		if a.When < b.When {
			return -1
		}
		return 1
	case a.At != b.At:
		if a.At < b.At {
			return -1
		}
		return 1
	case a.Edge != b.Edge:
		if a.Edge < b.Edge {
			return -1
		}
		return 1
	case a.Seq != b.Seq:
		if a.Seq < b.Seq {
			return -1
		}
		return 1
	}
	return 0
}

// exchange drains every outbox and injects the buffered boundary events into
// their destination kernels, merged per destination in (when, at, edge, seq)
// order so that destination seq assignment — the final tie-break — is
// deterministic. Runs on the driver goroutine only.
func (e *Engine) exchange() {
	for _, dst := range e.shards {
		buf := e.scratch[:0]
		for _, src := range e.shards {
			if pending := src.out[dst.id]; len(pending) > 0 {
				buf = append(buf, pending...)
				src.out[dst.id] = pending[:0]
			}
		}
		if len(buf) == 0 {
			continue
		}
		slices.SortFunc(buf, compareMsg)
		for i := range buf {
			m := &buf[i]
			dst.ports[m.Port].Inject(dst.k, m.When, m.At, &m.W)
			e.assertInjected()
		}
		e.scratch = buf[:0]
	}
	e.assertConserved()
}

// ensureWorkers lazily starts one goroutine per shard.
func (e *Engine) ensureWorkers() {
	if e.started {
		return
	}
	e.started = true
	for _, s := range e.shards {
		s.start = make(chan shardCmd, 1)
		s.done = make(chan error, 1)
		go s.run()
	}
}

// Close stops the worker goroutines. The engine must not be run again after
// Close; calling Close on a never-run or already-closed engine is a no-op.
func (e *Engine) Close() {
	if !e.started || e.closed {
		e.closed = true
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.start)
	}
}

// RunUntil advances every shard to the virtual instant t, firing all events
// scheduled at or before t — exactly the serial kernel's RunUntil contract,
// lifted to the sharded topology. Windows of width Lookahead() run
// concurrently; the final window is inclusive of t so instants at exactly t
// fire, matching the serial semantics.
func (e *Engine) RunUntil(t Time) error {
	if t < e.now {
		return ErrPastTime
	}
	if len(e.shards) == 1 {
		// Degenerate partition: the serial path, no goroutines or barriers.
		k := e.shards[0].k
		if err := k.RunUntil(t); err != nil {
			return err
		}
		e.now = t
		return nil
	}
	if e.closed {
		return errors.New("sim: engine is closed")
	}
	w := e.lookahead
	if w <= 0 {
		// No cross-shard edges: the shards are independent; one window.
		w = t - e.now + 1
	}
	e.ensureWorkers()
	for {
		e.exchange()
		target := e.now + w
		if target > t || target < e.now { // second clause: Time overflow
			target = t
		}
		final := target >= t
		e.windowEnd = target
		for _, s := range e.shards {
			s.start <- shardCmd{target: target, inclusive: final}
		}
		var firstErr error
		for _, s := range e.shards {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
		e.now = target
		e.windows++
		if final {
			break
		}
	}
	return nil
}
