package sim

import (
	"errors"
	"fmt"
	"slices"
)

// This file implements a conservative parallel discrete-event engine: one
// topology is partitioned into shards, each shard owns a private Kernel and
// runs on its own goroutine, and the shards synchronize through lookahead
// windows derived from the minimum cross-shard propagation delay.
//
// The synchronization protocol is the classic conservative window scheme
// (Chandy/Misra lookahead with a global barrier instead of null messages):
//
//	W = min over all cross-shard edges of their minimum delay (the lookahead)
//	repeat:
//	    inject every buffered boundary event, merged in (when, at, edge, seq)
//	    order, into its destination kernel
//	    every shard runs RunBefore(target) concurrently — the window barrier
//
// The window target is adaptive: each barrier peeks the earliest pending
// instant m across all shards (the measured front of in-flight work,
// including just-injected cross-shard events) and advances to min(t, m+W)
// instead of the static now+W. When the shards are idle ahead of the next
// event — between attack pulses, or while a fluid tier ticks on one shard —
// this skips the empty windows entirely; it degrades gracefully to the
// static scheme under saturation, because then m is just past the previous
// barrier. Safety is unchanged: every event fired inside the window has
// when >= m, so a boundary send occurs for m + edgeDelay >= m + W >= target.
//
// A shard executing inside a window ending at `target` can only create
// boundary events for instants >= target, because every cross-shard edge
// imposes at least W of delay. So no shard can ever receive an event for its
// own past — the merge at the next barrier is always safe, with no rollback
// machinery.
//
// Determinism is a hard contract: a sharded run must reproduce the serial
// kernel's observable behaviour exactly, at any worker count. The mechanism
// is the (when, at, seq) comparator in kernel.go — boundary events carry the
// virtual instant they were scheduled in the source shard ("at"), which is
// precisely the key the serial kernel's monotone seq counter encodes. The
// only residual freedom is the order of two boundary events with identical
// (when, at) arriving over different edges, which the merge breaks by edge
// id; the serial kernel would have broken it by the relative execution order
// of the two source events at that instant. Real topologies make such exact
// ties vanishingly rare (delays differ per flow), and the randomized
// equivalence tests pin the contract end to end. Window placement does not
// enter the argument at all — any barrier schedule that respects the
// conservative guard injects the same events in the same merged order — so
// the adaptive targets cannot perturb a trajectory.

// ErrNoLookahead is returned when a cross-shard edge declares a non-positive
// minimum delay: conservative synchronization requires strictly positive
// lookahead on every boundary edge.
var ErrNoLookahead = errors.New("sim: cross-shard edge with non-positive lookahead")

// Payload is the fixed-size boundary-event body. Models pack their
// cross-shard state (the netem layer packs a Packet) into the words; the
// engine never interprets them.
type Payload [6]uint64

// Port is the typed landing point for boundary events on a destination
// shard. Inject must schedule the decoded event on k via k.InjectArg with
// the provided (when, at) stamps; it runs on the engine's driver goroutine
// between windows, never concurrently with shard execution.
type Port interface {
	Inject(k *Kernel, when, at Time, w *Payload)
}

// boundaryEntry is one boundary event buffered in its source outbox: the
// delivery instant, the source-shard schedule instant (the determinism
// stamp), and the packed model state. Exactly 64 bytes — one cache line per
// event, appended sequentially by the source shard and read sequentially by
// the driver's merge, so a window's worth of boundary traffic streams
// through the cache instead of bouncing per-message.
type boundaryEntry struct {
	when Time
	at   Time
	w    Payload
}

// Outbox is the sending side of one cross-shard edge. Each outbox is a
// single-producer (its source shard's goroutine) single-consumer (the driver
// at the barrier) buffer: the source appends during a window, the driver
// drains between windows, and the window barrier is the synchronization
// point — no locks or atomics are needed. The buffer is retained across
// windows, so steady state appends allocate nothing.
type Outbox struct {
	s        *Shard
	dst      int
	port     int32
	edge     int32
	minDelay Time
	buf      []boundaryEntry
}

// Send buffers a boundary event for delivery at `when`, stamping it with the
// source shard's current instant. It must only be called from model code
// running on the source shard's kernel. The per-edge append order is the
// FIFO sequence the barrier merge uses as its final tie-break.
//
//pdos:hotpath
func (o *Outbox) Send(when Time, w *Payload) {
	s := o.s
	if when < s.eng.windowEnd {
		o.lookaheadViolation(when)
	}
	s.assertSent()
	o.buf = append(o.buf, boundaryEntry{when: when, at: s.k.now, w: *w})
}

// lookaheadViolation panics with the conservative-guard diagnostic; split
// from Send so the hot path carries no formatting.
func (o *Outbox) lookaheadViolation(when Time) {
	panic(fmt.Sprintf(
		"sim: conservative lookahead violated: edge %d sends for t=%d inside window ending %d",
		o.edge, when, o.s.eng.windowEnd))
}

// Shard is one partition of the topology: a private kernel plus the boundary
// plumbing that connects it to its peers.
type Shard struct {
	id    int
	eng   *Engine
	k     *Kernel
	ports []Port

	start chan shardCmd
	done  chan error

	asserts shardAsserts // pdosassert boundary-send accounting (assert.go)
}

type shardCmd struct {
	target    Time
	inclusive bool // final window: fire events at exactly target too
}

// ID reports the shard's index within its engine.
func (s *Shard) ID() int { return s.id }

// Kernel exposes the shard's private kernel for building model components.
func (s *Shard) Kernel() *Kernel { return s.k }

// RegisterPort registers a boundary landing point and returns its index for
// use in NewOutbox on peer shards. Registration order must be deterministic
// (it is part of the merge tie-break via outbox edge ids).
func (s *Shard) RegisterPort(p Port) int32 {
	s.ports = append(s.ports, p)
	return int32(len(s.ports) - 1)
}

// run is the shard's worker loop: execute one window per command.
func (s *Shard) run() {
	for cmd := range s.start {
		var err error
		if cmd.inclusive {
			err = s.k.RunUntil(cmd.target)
		} else {
			err = s.k.RunBefore(cmd.target)
		}
		s.done <- err
	}
}

// Engine drives a set of shards through conservative lookahead windows.
// Build phase (NewEngine, RegisterPort, NewOutbox, model wiring) is
// single-goroutine; RunUntil then alternates concurrent shard windows with
// serial barrier merges. With a single shard the engine degenerates to the
// serial kernel: RunUntil forwards directly with no goroutines, channels, or
// barrier overhead.
type Engine struct {
	shards    []*Shard
	outboxes  []*Outbox   // every edge, in creation (= edge id) order
	inbound   [][]*Outbox // per destination shard, in edge id order
	lookahead Time        // min over outboxes; the conservative window floor
	now       Time
	windowEnd Time   // shards may not Send below this (conservative guard)
	windows   uint64 // barrier count, for diagnostics and benchmarks
	started   bool
	closed    bool
	scratch   []boundaryRef

	asserts engineAsserts // pdosassert boundary-injection accounting (assert.go)
}

// NewEngine returns an engine with n empty shards (n >= 1), each owning a
// fresh timing-wheel kernel.
func NewEngine(n int) *Engine {
	if n < 1 {
		n = 1
	}
	e := &Engine{
		shards:  make([]*Shard, n),
		inbound: make([][]*Outbox, n),
	}
	for i := range e.shards {
		e.shards[i] = &Shard{
			id:  i,
			eng: e,
			k:   New(),
		}
	}
	return e
}

// Shards reports the number of partitions.
func (e *Engine) Shards() int { return len(e.shards) }

// Shard returns partition i.
func (e *Engine) Shard(i int) *Shard { return e.shards[i] }

// Now reports the engine's barrier clock: every shard's kernel has reached
// at least this instant.
func (e *Engine) Now() Time { return e.now }

// Windows reports how many barrier windows have been executed.
func (e *Engine) Windows() uint64 { return e.windows }

// Lookahead reports the conservative window width: the minimum declared
// delay over all cross-shard edges (0 until the first edge exists). The
// adaptive barrier advances windows beyond this floor whenever every shard's
// next event lies further out.
func (e *Engine) Lookahead() Time { return e.lookahead }

// Processed reports the total kernel events fired across all shards. Because
// a boundary transfer suppresses exactly one delivery event in the source
// shard and creates exactly one in the destination, this equals the serial
// kernel's Processed for an equivalent run — up to bookkeeping timers that
// model layers run per shard (the tcp package's RTO-wheel heartbeats);
// layers that own such timers subtract them, as topo.Environment.Processed
// does.
func (e *Engine) Processed() uint64 {
	var n uint64
	for _, s := range e.shards {
		n += s.k.Processed()
	}
	return n
}

// Event fusion (netem's fused link path, DESIGN.md §14) never weakens the
// conservative lookahead protocol: cross-shard links stay on the two-event
// path, so portal timestamps and the adaptive PeekNext window bound are
// exactly what they were, and a fused local link's single delivery event can
// only sit at or after the tx-done event it replaces — PeekNext horizons
// only move later, never earlier.

// Pending reports the pending events across all shards plus boundary events
// buffered for future windows.
func (e *Engine) Pending() int {
	n := 0
	for _, s := range e.shards {
		n += s.k.Pending()
	}
	for _, ob := range e.outboxes {
		n += len(ob.buf)
	}
	return n
}

// NewOutbox creates a cross-shard edge from src to dst, landing on dst's
// port (a RegisterPort result). minDelay is the edge's guaranteed minimum
// delivery latency — the engine's lookahead is the minimum over all edges,
// so it must be strictly positive.
func (e *Engine) NewOutbox(src, dst *Shard, port int32, minDelay Time) (*Outbox, error) {
	if minDelay <= 0 {
		return nil, ErrNoLookahead
	}
	if src.eng != e || dst.eng != e {
		return nil, errors.New("sim: outbox endpoints belong to a different engine")
	}
	if src == dst {
		return nil, errors.New("sim: outbox source and destination are the same shard")
	}
	if int(port) >= len(dst.ports) {
		return nil, fmt.Errorf("sim: destination shard %d has no port %d", dst.id, port)
	}
	o := &Outbox{s: src, dst: dst.id, port: port, edge: int32(len(e.outboxes)), minDelay: minDelay}
	e.outboxes = append(e.outboxes, o)
	e.inbound[dst.id] = append(e.inbound[dst.id], o)
	if e.lookahead == 0 || minDelay < e.lookahead {
		e.lookahead = minDelay
	}
	return o, nil
}

// boundaryRef points at one buffered boundary event for the barrier merge:
// the sort key is copied out, the 48-byte payload stays in its outbox buffer
// and is read exactly once, at injection.
type boundaryRef struct {
	when Time
	at   Time
	ob   *Outbox
	pos  int32
}

// compareRef orders boundary events for the barrier merge: delivery instant,
// then source schedule instant (the determinism stamp), then edge id, then
// the per-edge FIFO position. Within one edge the buffer position is the
// append order, so this is the same total order the per-message transfer
// sequence used to encode. Allocation-free under slices.SortFunc.
func compareRef(a, b boundaryRef) int {
	switch {
	case a.when != b.when:
		if a.when < b.when {
			return -1
		}
		return 1
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.ob.edge != b.ob.edge:
		if a.ob.edge < b.ob.edge {
			return -1
		}
		return 1
	case a.pos != b.pos:
		if a.pos < b.pos {
			return -1
		}
		return 1
	}
	return 0
}

// exchange drains every outbox and injects the buffered boundary events into
// their destination kernels, merged per destination in (when, at, edge, pos)
// order so that destination seq assignment — the final tie-break — is
// deterministic. Runs on the driver goroutine only. The merge sorts
// references, not messages: payloads stream once from the outbox buffers
// straight into the destination kernels.
func (e *Engine) exchange() {
	for di, dst := range e.shards {
		refs := e.scratch[:0]
		for _, ob := range e.inbound[di] {
			for pos := range ob.buf {
				refs = append(refs, boundaryRef{
					when: ob.buf[pos].when,
					at:   ob.buf[pos].at,
					ob:   ob,
					pos:  int32(pos),
				})
			}
		}
		if len(refs) == 0 {
			continue
		}
		slices.SortFunc(refs, compareRef)
		for i := range refs {
			r := &refs[i]
			ent := &r.ob.buf[r.pos]
			dst.ports[r.ob.port].Inject(dst.k, ent.when, ent.at, &ent.w)
			e.assertInjected()
		}
		for _, ob := range e.inbound[di] {
			ob.buf = ob.buf[:0]
		}
		e.scratch = refs[:0]
	}
	e.assertConserved()
}

// peekMin reports the earliest pending instant over all shard kernels, after
// the barrier's injections. Runs on the driver goroutine between windows;
// peeking may advance a kernel's wheel cascade but never detaches events.
func (e *Engine) peekMin() (Time, bool) {
	var m Time
	found := false
	for _, s := range e.shards {
		if w, ok := s.k.PeekNext(); ok && (!found || w < m) {
			m, found = w, true
		}
	}
	return m, found
}

// ensureWorkers lazily starts one goroutine per shard.
func (e *Engine) ensureWorkers() {
	if e.started {
		return
	}
	e.started = true
	for _, s := range e.shards {
		s.start = make(chan shardCmd, 1)
		s.done = make(chan error, 1)
		//pdos:shard-ok — the engine's own worker spawn: the shard is owned exclusively by this goroutine from here on, the engine only talks to it through start/done
		go s.run()
	}
}

// Close stops the worker goroutines. The engine must not be run again after
// Close; calling Close on a never-run or already-closed engine is a no-op.
func (e *Engine) Close() {
	if !e.started || e.closed {
		e.closed = true
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.start)
	}
}

// RunUntil advances every shard to the virtual instant t, firing all events
// scheduled at or before t — exactly the serial kernel's RunUntil contract,
// lifted to the sharded topology. Each window runs concurrently to the
// adaptive target min(t, m+W), where m is the earliest pending instant
// across the shards at the barrier and W the conservative lookahead; the
// final window is inclusive of t so instants at exactly t fire, matching the
// serial semantics.
func (e *Engine) RunUntil(t Time) error {
	if t < e.now {
		return ErrPastTime
	}
	if len(e.shards) == 1 {
		// Degenerate partition: the serial path, no goroutines or barriers.
		k := e.shards[0].k
		if err := k.RunUntil(t); err != nil {
			return err
		}
		e.now = t
		return nil
	}
	if e.closed {
		return errors.New("sim: engine is closed")
	}
	w := e.lookahead
	if w <= 0 {
		// No cross-shard edges: the shards are independent; one window.
		w = t - e.now + 1
	}
	e.ensureWorkers()
	for {
		e.exchange()
		target := t
		if m, ok := e.peekMin(); ok {
			// m >= e.now always (RunBefore drained everything earlier and
			// injections respect the guard), so nt > e.now unless m+w
			// overflowed — in which case the t default stands.
			if nt := m + w; nt < t && nt > e.now {
				target = nt
			}
		}
		final := target >= t
		e.windowEnd = target
		for _, s := range e.shards {
			s.start <- shardCmd{target: target, inclusive: final}
		}
		var firstErr error
		for _, s := range e.shards {
			if err := <-s.done; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
		e.now = target
		e.windows++
		if final {
			break
		}
	}
	return nil
}
