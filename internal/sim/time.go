// Package sim implements the discrete-event simulation kernel that underpins
// every other subsystem in pulsedos: the network emulator, the TCP stack, the
// attack traffic generators, and the Dummynet test-bed emulation all advance
// a shared virtual clock owned by a Kernel.
//
// The kernel is strictly single-threaded and deterministic: events scheduled
// at the same instant fire in scheduling order, and a scenario driven from a
// fixed RNG seed reproduces byte-identical results on every run.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is an instant of virtual simulation time, measured in nanoseconds
// since the start of the simulation. It is deliberately distinct from
// time.Time: virtual time has no calendar, no time zone, and no relation to
// the wall clock.
type Time int64

// MaxTime is the last representable virtual instant (~292 virtual years).
// Kernel.AfterTicks saturates to it instead of wrapping negative.
const MaxTime Time = math.MaxInt64

// Common virtual-time unit spans, expressed as Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a wall-clock duration into a virtual-time delta.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// FromSeconds converts a floating-point number of seconds into virtual time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time {
	//pdos:vtime-ok — this IS the sanctioned float→stamp seam the vtime analyzer points callers at
	return Time(s * float64(Second))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Duration reports t as a time.Duration measured from the simulation origin.
func (t Time) Duration() time.Duration {
	return time.Duration(t)
}

// Add returns t shifted by the given delta.
func (t Time) Add(d Time) Time {
	return t + d
}

// Sub returns the delta t - u.
func (t Time) Sub(u Time) Time {
	return t - u
}

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant with full nanosecond precision, e.g. "1.25s".
func (t Time) String() string {
	return fmt.Sprintf("%gs", t.Seconds())
}
