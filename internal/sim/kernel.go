package sim

import (
	"container/heap"
	"errors"
	"time"
)

// ErrPastTime is returned when an event is scheduled before the current
// virtual instant. The kernel never travels backwards.
var ErrPastTime = errors.New("sim: event scheduled in the past")

// event is a single pending callback in the kernel's priority queue.
type event struct {
	when  Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    func()
	index int // heap index, -1 once removed
	dead  bool
}

// eventHeap orders events by (when, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event. The zero value is not usable;
// timers are created by Kernel.At and Kernel.After.
type Timer struct {
	k  *Kernel
	ev *event
}

// Cancel removes the timer's pending event. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was still
// pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.dead {
		return false
	}
	t.ev.dead = true
	t.ev.fn = nil
	if t.ev.index >= 0 {
		heap.Remove(&t.k.events, t.ev.index)
	}
	return true
}

// Active reports whether the timer's event is still pending.
func (t *Timer) Active() bool {
	return t != nil && t.ev != nil && !t.ev.dead
}

// When reports the virtual instant at which the timer fires (or fired).
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.when
}

// Kernel is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all model code runs inside event callbacks on a single
// goroutine, which is both how ns-2 behaves and what makes runs reproducible.
type Kernel struct {
	now       Time
	events    eventHeap
	seq       uint64
	processed uint64
	limit     uint64 // 0 = unlimited
}

// New returns a kernel with the clock at the virtual origin.
func New() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual instant.
func (k *Kernel) Now() Time {
	return k.now
}

// Pending reports the number of events waiting to fire.
func (k *Kernel) Pending() int {
	return len(k.events)
}

// Processed reports the total number of events fired so far.
func (k *Kernel) Processed() uint64 {
	return k.processed
}

// SetEventLimit bounds the total number of events the kernel will process;
// Run and RunUntil return ErrEventLimit once the budget is exhausted. A
// limit of zero (the default) disables the bound. The limit is a guard rail
// against runaway scenarios in tests and fuzzing, not a tuning knob.
func (k *Kernel) SetEventLimit(n uint64) {
	k.limit = n
}

// ErrEventLimit is returned by Run and RunUntil when the event budget set by
// SetEventLimit is exhausted.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// At schedules fn to run at the absolute virtual instant t. Events at equal
// instants fire in the order they were scheduled.
func (k *Kernel) At(t Time, fn func()) (*Timer, error) {
	if t < k.now {
		return nil, ErrPastTime
	}
	ev := &event{when: t, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, ev)
	return &Timer{k: k, ev: ev}, nil
}

// After schedules fn to run d after the current instant. Negative delays are
// clamped to zero, so After never fails.
func (k *Kernel) After(d time.Duration, fn func()) *Timer {
	return k.AfterTicks(FromDuration(d), fn)
}

// AfterTicks schedules fn to run delta virtual nanoseconds after the current
// instant. Negative deltas are clamped to zero.
func (k *Kernel) AfterTicks(delta Time, fn func()) *Timer {
	if delta < 0 {
		delta = 0
	}
	t, err := k.At(k.now+delta, fn)
	if err != nil {
		// Unreachable: now+delta >= now for non-negative delta.
		return &Timer{}
	}
	return t
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		popped := heap.Pop(&k.events)
		ev, ok := popped.(*event)
		if !ok {
			continue
		}
		if ev.dead {
			continue
		}
		k.now = ev.when
		k.processed++
		fn := ev.fn
		ev.dead = true
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the event budget is exhausted.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.limit > 0 && k.processed >= k.limit {
			return ErrEventLimit
		}
	}
	return nil
}

// RunUntil fires all events scheduled at or before the virtual instant t,
// then advances the clock to exactly t. Events scheduled after t remain
// pending.
func (k *Kernel) RunUntil(t Time) error {
	for len(k.events) > 0 && k.events[0].when <= t {
		k.Step()
		if k.limit > 0 && k.processed >= k.limit {
			return ErrEventLimit
		}
	}
	if t > k.now {
		k.now = t
	}
	return nil
}

// RunFor advances the simulation by the given wall-duration of virtual time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now + FromDuration(d))
}
