package sim

import (
	"errors"
	"time"
)

// ErrPastTime is returned when an event is scheduled before the current
// virtual instant. The kernel never travels backwards.
var ErrPastTime = errors.New("sim: event scheduled in the past")

// Sentinel values for event.index. Non-negative indices locate the event in
// the overflow heap; wheel-resident events carry their slot in event.slot
// instead.
const (
	idxNone  = -1 // not pending (fired, cancelled, or on the free list)
	idxWheel = -2 // pending inside a timer-wheel slot
)

// event is a single pending callback in the kernel's pending set. Fired and
// cancelled events are recycled through the kernel's free list, so a
// steady-state simulation schedules without allocating; the generation
// counter lets outstanding Timer handles detect that their event has been
// reused.
type event struct {
	when Time
	at   Time   // virtual instant the event was scheduled (see before)
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()

	// argFn/arg is the closure-free variant used by the packet hot path:
	// scheduling a prebuilt func(any) with a pointer argument performs no
	// allocation, where capturing the pointer in a fresh closure would.
	argFn func(any)
	arg   any

	// next/prev link the event into its wheel slot's doubly-linked list,
	// making wheel-side Cancel O(1). Both are nil while the event sits in
	// the heap or on the free list.
	next *event
	prev *event

	index int32  // heap index, idxWheel in a slot, idxNone once removed
	slot  int32  // level<<8 | slot position while index == idxWheel, else -1
	gen   uint32 // incremented every time the event returns to the free list
}

// before reports the (when, at, seq) firing order. For events scheduled
// locally this is exactly the classic (when, seq) order — seq is monotone in
// schedule time, so comparing at first can never disagree with seq — but the
// extra key is what lets the parallel engine's boundary events (InjectArg)
// slot into the order the serial kernel would have produced: an injected
// event carries the virtual instant it was scheduled at in its source shard,
// and therefore sorts against local events exactly where the serial run's
// schedule sequence would have placed it.
func (e *event) before(o *event) bool {
	if e.when != o.when {
		return e.when < o.when
	}
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Timer is a handle to a scheduled event. The zero value is an inactive
// timer: Cancel and Active report false and are safe to call. Timers are
// value handles — copying one is cheap and all copies refer to the same
// scheduled event.
type Timer struct {
	k    *Kernel
	ev   *event
	gen  uint32
	when Time
}

// valid reports whether the handle still refers to its original event (the
// event has neither fired nor been cancelled nor been recycled).
func (t *Timer) valid() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Cancel removes the timer's pending event. Cancelling an already-fired or
// already-cancelled timer is a no-op. It reports whether the event was still
// pending.
func (t *Timer) Cancel() bool {
	if !t.valid() {
		return false
	}
	ev := t.ev
	t.k.unschedule(ev)
	t.k.release(ev)
	return true
}

// Active reports whether the timer's event is still pending.
func (t *Timer) Active() bool {
	return t.valid()
}

// When reports the virtual instant at which the timer fires (or fired).
func (t *Timer) When() Time {
	if t == nil {
		return 0
	}
	return t.when
}

// Kernel is a deterministic discrete-event scheduler. It is not safe for
// concurrent use: all model code runs inside event callbacks on a single
// goroutine, which is both how ns-2 behaves and what makes runs reproducible.
// The single-goroutine invariant is also what makes the event free list
// safe — see DESIGN.md's Performance section.
//
// The pending set is split between a hierarchical timing wheel (near future,
// O(1) insert/cancel — see wheel.go) and an inlined 4-ary index heap (events
// behind the wheel floor and beyond the wheel horizon). The firing order is
// exactly (when, seq) — identical to a pure heap — because due wheel slots
// are drained through the heap before anything in them fires. The heap is
// inlined rather than container/heap: no interface dispatch, no `any` boxing
// on push/pop, and a shallower tree than a binary heap (fewer cache-missing
// levels per sift).
type Kernel struct {
	now       Time
	nowAt     Time     // schedule stamp (`at`) of the most recently fired event
	events    []*event // 4-ary min-heap ordered by (when, seq)
	free      []*event // recycled event structs
	seq       uint64
	processed uint64
	limit     uint64 // 0 = unlimited
	pending   int    // heap + wheel population
	solo      *event // cache: the sole pending event while pending == 1, else nil

	// ---- hierarchical timing wheel (see wheel.go) ----
	heapOnly   bool // true: bypass the wheel entirely (golden-reference mode)
	wheelCount int  // events currently resident in wheel slots
	upperCount int  // subset of wheelCount resident in levels 1..2
	floor      Time // wheel mapping origin: every slotted event has when >= floor
	occupied   [wheelLevels][wheelSlots / 64]uint64
	wheel      [wheelLevels][wheelSlots]*event // slot heads (intrusive lists)

	// asserts is the pdosassert invariant state: zero-size and unused in
	// normal builds, the last fired (when, at, seq) key under -tags
	// pdosassert (see assert.go).
	asserts kernelAsserts
}

// New returns a kernel with the clock at the virtual origin, using the
// hierarchical timing wheel for near-future events.
func New() *Kernel {
	k := &Kernel{}
	k.setFloor(0)
	return k
}

// NewHeapKernel returns a kernel that keeps every pending event in the 4-ary
// heap, bypassing the timing wheel. It fires events in exactly the same
// (when, seq) order as New — this is the golden reference the wheel kernel is
// equivalence-tested against, and the baseline the scale benchmarks record.
func NewHeapKernel() *Kernel {
	k := New()
	k.heapOnly = true
	return k
}

// HeapOnly reports whether the kernel bypasses the timing wheel.
func (k *Kernel) HeapOnly() bool {
	return k.heapOnly
}

// Now reports the current virtual instant.
func (k *Kernel) Now() Time {
	return k.now
}

// Pending reports the number of events waiting to fire.
func (k *Kernel) Pending() int {
	return k.pending
}

// Processed reports the total number of events fired so far.
func (k *Kernel) Processed() uint64 {
	return k.processed
}

// SetEventLimit bounds the total number of events the kernel will process;
// Run and RunUntil return ErrEventLimit once the budget is exhausted. A
// limit of zero (the default) disables the bound. The limit is a guard rail
// against runaway scenarios in tests and fuzzing, not a tuning knob.
func (k *Kernel) SetEventLimit(n uint64) {
	k.limit = n
}

// ErrEventLimit is returned by Run and RunUntil when the event budget set by
// SetEventLimit is exhausted.
var ErrEventLimit = errors.New("sim: event limit exceeded")

// ---- heap primitives (4-ary, index-maintaining) ----

// push appends ev and restores the heap invariant.
//
//pdos:hotpath
func (k *Kernel) push(ev *event) {
	k.events = append(k.events, ev)
	k.siftUp(len(k.events) - 1)
}

// siftUp moves the event at index i toward the root until ordered.
//
//pdos:hotpath
func (k *Kernel) siftUp(i int) {
	h := k.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !ev.before(p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = ev
	ev.index = int32(i)
}

// siftDown moves the event at index i toward the leaves until ordered.
//
//pdos:hotpath
func (k *Kernel) siftDown(i int) {
	h := k.events
	n := len(h)
	ev := h[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		best := first
		bv := h[first]
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(bv) {
				best, bv = c, h[c]
			}
		}
		if !bv.before(ev) {
			break
		}
		h[i] = bv
		bv.index = int32(i)
		i = best
	}
	h[i] = ev
	ev.index = int32(i)
}

// remove deletes the event at heap index i.
//
//pdos:hotpath
func (k *Kernel) remove(i int) {
	h := k.events
	n := len(h) - 1
	ev := h[i]
	if i != n {
		moved := h[n]
		h[i] = moved
		moved.index = int32(i)
		h[n] = nil
		k.events = h[:n]
		if moved.before(ev) {
			k.siftUp(i)
		} else {
			k.siftDown(i)
		}
	} else {
		h[n] = nil
		k.events = h[:n]
	}
	ev.index = idxNone
}

// ---- event free list ----

// alloc takes an event struct from the free list (or the heap allocator when
// the list is empty) and initializes it for scheduling at t.
//
//pdos:hotpath
func (k *Kernel) alloc(t Time) *event {
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		ev = &event{slot: -1}
	}
	ev.when = t
	ev.at = k.now
	ev.seq = k.seq
	k.seq++
	return ev
}

// release returns a fired or cancelled event to the free list. Bumping the
// generation invalidates every outstanding Timer handle to it, so a recycled
// struct can never be cancelled through a stale handle.
//
//pdos:hotpath
func (k *Kernel) release(ev *event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.next = nil
	ev.prev = nil
	ev.index = idxNone
	ev.slot = -1
	ev.gen++
	k.free = append(k.free, ev)
}

// ---- scheduling ----

// enqueue adds a freshly allocated event to the pending set: the wheel when
// its instant maps onto a live slot, the heap otherwise (heap-only mode,
// instants behind the wheel floor, or beyond the wheel horizon).
//
//pdos:hotpath
func (k *Kernel) enqueue(ev *event) {
	k.pending++ //pdos:counter kernel-pending inc — one event enters the pending set
	if k.pending == 1 {
		k.solo = ev
	} else {
		k.solo = nil
	}
	if k.heapOnly {
		k.push(ev)
		return
	}
	if k.wheelCount == 0 {
		// Empty wheel: nothing constrains the mapping origin, so snap it to
		// the new event. This keeps long-idle simulations (and the common
		// one-pending-event chain) on the cheap level-0 path forever.
		if ev.when != k.floor {
			k.setFloor(ev.when)
		}
	} else if ev.when < k.floor {
		k.push(ev)
		return
	}
	k.place(ev)
}

// At schedules fn to run at the absolute virtual instant t. Events at equal
// instants fire in the order they were scheduled.
//
//pdos:hotpath
func (k *Kernel) At(t Time, fn func()) (Timer, error) {
	if t < k.now {
		return Timer{}, ErrPastTime
	}
	ev := k.alloc(t)
	ev.fn = fn
	k.enqueue(ev)
	return Timer{k: k, ev: ev, gen: ev.gen, when: t}, nil
}

// AtArg schedules fn(arg) at the absolute virtual instant t. This is the
// allocation-free flavour for hot paths: fn is typically built once per
// component, and arg (commonly a *Packet) rides in the event instead of a
// freshly captured closure.
//
//pdos:hotpath
func (k *Kernel) AtArg(t Time, fn func(any), arg any) (Timer, error) {
	if t < k.now {
		return Timer{}, ErrPastTime
	}
	ev := k.alloc(t)
	ev.argFn = fn
	ev.arg = arg
	k.enqueue(ev)
	return Timer{k: k, ev: ev, gen: ev.gen, when: t}, nil
}

// After schedules fn to run d after the current instant. Negative delays are
// clamped to zero, so After never fails.
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	return k.AfterTicks(FromDuration(d), fn)
}

// AfterTicks schedules fn to run delta virtual nanoseconds after the current
// instant. Negative deltas are clamped to zero; deltas so large that
// now+delta would overflow are clamped to MaxTime, the last representable
// instant.
func (k *Kernel) AfterTicks(delta Time, fn func()) Timer {
	tm, _ := k.At(k.clampDelta(delta), fn)
	return tm
}

// AfterTicksArg is the closure-free counterpart of AfterTicks: it schedules
// the prebuilt fn with arg after delta virtual nanoseconds.
//
//pdos:hotpath
func (k *Kernel) AfterTicksArg(delta Time, fn func(any), arg any) Timer {
	tm, _ := k.AtArg(k.clampDelta(delta), fn, arg)
	return tm
}

// clampDelta resolves now+delta with saturation: negative deltas clamp to
// now, and deltas that would wrap past MaxTime clamp to MaxTime.
//
//pdos:hotpath
func (k *Kernel) clampDelta(delta Time) Time {
	if delta < 0 {
		return k.now
	}
	t := k.now + delta
	if t < k.now {
		return MaxTime
	}
	return t
}

// ---- execution ----

// fire removes ev — which locate() just proved is the global (when, seq)
// minimum — from the pending set, advances the clock, and runs its callback.
//
//pdos:hotpath
func (k *Kernel) fire(ev *event) {
	k.assertFire(ev)
	k.unschedule(ev)
	k.now = ev.when
	k.nowAt = ev.at
	k.processed++
	if ev.argFn != nil {
		fn, arg := ev.argFn, ev.arg
		k.release(ev)
		fn(arg)
	} else {
		fn := ev.fn
		k.release(ev)
		fn()
	}
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
//
//pdos:hotpath
func (k *Kernel) Step() bool {
	ev := k.locate()
	if ev == nil {
		return false
	}
	k.fire(ev)
	return true
}

// PeekNext reports the instant of the earliest pending event without firing
// or detaching it; ok is false when nothing is pending. Peeking may advance
// the timing wheel's internal cascade (locate's contract), but the pending
// set and its order are untouched, so any number of peeks between Run calls
// observe the same front. The parallel engine's adaptive barrier uses this
// to size lookahead windows to the measured event horizon.
func (k *Kernel) PeekNext() (Time, bool) {
	ev := k.locate()
	if ev == nil {
		return 0, false
	}
	return ev.when, true
}

// Run fires events until the queue drains or the event budget is exhausted.
func (k *Kernel) Run() error {
	for k.Step() {
		if k.limit > 0 && k.processed >= k.limit {
			return ErrEventLimit
		}
	}
	return nil
}

// RunUntil fires all events scheduled at or before the virtual instant t,
// then advances the clock to exactly t. Events scheduled after t remain
// pending.
func (k *Kernel) RunUntil(t Time) error {
	for {
		ev := k.locate()
		if ev == nil || ev.when > t {
			break
		}
		k.fire(ev)
		if k.limit > 0 && k.processed >= k.limit {
			return ErrEventLimit
		}
	}
	if t > k.now {
		k.now = t
	}
	return nil
}

// RunFor advances the simulation by the given wall-duration of virtual time.
func (k *Kernel) RunFor(d time.Duration) error {
	return k.RunUntil(k.now + FromDuration(d))
}

// RunBefore fires all events scheduled strictly before the virtual instant t,
// then advances the clock to exactly t. It is the window-execution primitive
// of the conservative parallel engine (see parallel.go): a shard runs to the
// window edge exclusively, so that boundary events injected at the barrier
// for instant t still order against local events at t through the full
// (when, at, seq) comparator rather than having already fired past them.
func (k *Kernel) RunBefore(t Time) error {
	for {
		ev := k.locate()
		if ev == nil || ev.when >= t {
			break
		}
		k.fire(ev)
		if k.limit > 0 && k.processed >= k.limit {
			return ErrEventLimit
		}
	}
	if t > k.now {
		k.now = t
	}
	return nil
}

// AtArgStamped schedules fn(arg) at the absolute instant `when`, carrying an
// explicit schedule stamp `at` in place of the current instant. It is the
// local-kernel counterpart of InjectArg, built for event fusion: a fused link
// delivery fires at tx-done+delay but must sort at the (when, at, seq) slot
// the golden two-event path's delivery — scheduled at tx-done — would have
// occupied, so the fused schedule back-stamps `at` to the tx-done instant.
// Stamps are clamped: a stamp after `when` collapses to `when`, and a
// same-instant schedule (`when == now`) raises the stamp to at least the
// stamp of the currently firing event — the event must fire after the
// current one, so a smaller stamp would both break the strictly increasing
// (when, at, seq) firing order (the pdosassert invariant) and claim a
// sub-instant position that has already passed. For the fused link this
// clamp is exactly the "did the golden tx-done already fire this instant?"
// test: if position (now, at) passed, golden's transmitter is already free
// and its restart would happen at the current sub-instant position, which is
// where the clamped event lands. Scheduling in the past still fails with
// ErrPastTime.
//
//pdos:hotpath
func (k *Kernel) AtArgStamped(when, at Time, fn func(any), arg any) (Timer, error) {
	if when < k.now {
		return Timer{}, ErrPastTime
	}
	if at > when {
		at = when
	}
	if when == k.now && at < k.nowAt {
		at = k.nowAt
	}
	ev := k.alloc(when)
	ev.at = at
	ev.argFn = fn
	ev.arg = arg
	k.enqueue(ev)
	return Timer{k: k, ev: ev, gen: ev.gen, when: when}, nil
}

// InjectArg schedules fn(arg) at the absolute instant `when`, carrying the
// foreign schedule stamp `at` — the virtual instant the event was created in
// its source shard. It is the boundary-event entry point of the parallel
// engine: injected events interleave with locally scheduled ones in the same
// (when, at, seq) order the serial kernel would have produced, because a
// serial kernel would have assigned the event a seq drawn at exactly that
// source instant. Callers must present injections in deterministic order:
// ties at identical (when, at) fall back to the local seq counter.
func (k *Kernel) InjectArg(when, at Time, fn func(any), arg any) error {
	if when < k.now {
		return ErrPastTime
	}
	if at > when {
		at = when
	}
	ev := k.alloc(when)
	ev.at = at
	ev.argFn = fn
	ev.arg = arg
	k.enqueue(ev)
	return nil
}
