package sim

import (
	"fmt"
	"testing"
)

// The parallel engine's determinism contract is pinned the same way the
// wheel kernel's was (wheel_test.go): run a randomized program on the serial
// kernel and on sharded engines at several worker counts, and require the
// observable results — per-node firing logs, counters, processed and pending
// totals — to match exactly.
//
// The program is a message-passing world: N nodes exchange hop-limited
// messages whose routing, fan-out, and delays derive from a rng state
// carried inside each message (so decisions depend only on message content,
// never on which shard executes them). Messages between distinct nodes
// always travel with delay >= L, the declared lookahead; self-messages may
// use any delay. Each arrival folds the node's order-sensitive state into
// the message value, so any divergence in event ordering cascades into the
// logs and is caught.

func pxorshift(x uint64) uint64 {
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	return x
}

type ptmsg struct {
	node int32
	hops int32
	rng  uint64
	val  uint64
}

type prec struct {
	when Time
	val  uint64
}

type pnode struct {
	counter uint64
	log     []prec
}

type pworld struct {
	nodes []pnode
	L     Time
	emit  func(k *Kernel, src int32, when Time, m *ptmsg)
}

// arrive is the shared model step: record the arrival, then derive and emit
// the next hop(s) from the carried rng state.
func (w *pworld) arrive(k *Kernel, m *ptmsg) {
	now := k.Now()
	n := &w.nodes[m.node]
	m.val += n.counter ^ uint64(len(n.log))
	n.counter += m.val
	n.log = append(n.log, prec{now, m.val})
	if m.hops <= 0 {
		return
	}
	r := pxorshift(m.rng)
	fan := 1
	if r%5 == 0 {
		fan = 2
	}
	for i := 0; i < fan; i++ {
		r = pxorshift(r)
		next := int32(r % uint64(len(w.nodes)))
		r = pxorshift(r)
		var delay Time
		if next == m.node {
			delay = Time(r % uint64(w.L)) // self-hops may undercut the lookahead
		} else {
			delay = w.L + Time(r%uint64(3*w.L))
		}
		r = pxorshift(r)
		w.emit(k, m.node, now+delay, &ptmsg{node: next, hops: m.hops - 1, rng: r, val: m.val + uint64(i)})
	}
}

func (w *pworld) seedInitial(seed uint64, horizon Time) []ptmsg {
	r := seed
	msgs := make([]ptmsg, len(w.nodes))
	for i := range msgs {
		r = pxorshift(r)
		start := Time(r % uint64(horizon/4))
		r = pxorshift(r)
		hops := int32(3 + r%20)
		r = pxorshift(r)
		msgs[i] = ptmsg{node: int32(i), hops: hops, rng: r, val: uint64(i)}
		_ = start
		msgs[i].val = uint64(i)<<32 | uint64(start)
	}
	return msgs
}

type pworldResult struct {
	nodes     []pnode
	processed uint64
	pending   int
}

// runSerialWorld executes the program on a single serial kernel.
func runSerialWorld(t *testing.T, nodes int, L Time, seed uint64, horizon Time) pworldResult {
	t.Helper()
	k := New()
	w := &pworld{nodes: make([]pnode, nodes), L: L}
	deliver := func(a any) { w.arrive(k, a.(*ptmsg)) }
	w.emit = func(_ *Kernel, _ int32, when Time, m *ptmsg) {
		if _, err := k.AtArg(when, deliver, m); err != nil {
			t.Fatalf("serial schedule: %v", err)
		}
	}
	for _, m := range w.seedInitial(seed, horizon) {
		mm := m
		start := Time(mm.val & 0xffffffff)
		if _, err := k.AtArg(start, deliver, &mm); err != nil {
			t.Fatalf("serial seed: %v", err)
		}
	}
	if err := k.RunUntil(horizon); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	return pworldResult{nodes: w.nodes, processed: k.Processed(), pending: k.Pending()}
}

type pport struct {
	k       *Kernel
	deliver func(any)
}

func (p *pport) Inject(k *Kernel, when, at Time, wd *Payload) {
	m := &ptmsg{
		node: int32(wd[0]),
		hops: int32(wd[1]),
		rng:  wd[2],
		val:  wd[3],
	}
	if err := k.InjectArg(when, at, p.deliver, m); err != nil {
		panic(err)
	}
}

// runShardedWorld executes the same program on an engine with the nodes
// distributed round-robin over `workers` shards.
func runShardedWorld(t *testing.T, nodes, workers int, L Time, seed uint64, horizon Time) pworldResult {
	t.Helper()
	e := NewEngine(workers)
	defer e.Close()
	w := &pworld{nodes: make([]pnode, nodes), L: L}
	owner := func(node int32) int { return int(node) % workers }

	delivers := make([]func(any), workers)
	ports := make([]int32, workers)
	for s := 0; s < workers; s++ {
		sh := e.Shard(s)
		k := sh.Kernel()
		delivers[s] = func(a any) { w.arrive(k, a.(*ptmsg)) }
		ports[s] = sh.RegisterPort(&pport{k: k, deliver: delivers[s]})
	}
	// Full mesh of boundary edges, all with lookahead L.
	outbox := make([][]*Outbox, workers)
	for s := 0; s < workers; s++ {
		outbox[s] = make([]*Outbox, workers)
		for d := 0; d < workers; d++ {
			if s == d {
				continue
			}
			ob, err := e.NewOutbox(e.Shard(s), e.Shard(d), ports[d], L)
			if err != nil {
				t.Fatalf("outbox %d->%d: %v", s, d, err)
			}
			outbox[s][d] = ob
		}
	}
	w.emit = func(k *Kernel, src int32, when Time, m *ptmsg) {
		so, do := owner(src), owner(m.node)
		if so == do {
			if _, err := k.AtArg(when, delivers[do], m); err != nil {
				panic(err)
			}
			return
		}
		var wd Payload
		wd[0] = uint64(uint32(m.node))
		wd[1] = uint64(uint32(m.hops))
		wd[2] = m.rng
		wd[3] = m.val
		outbox[so][do].Send(when, &wd)
	}
	for _, m := range w.seedInitial(seed, horizon) {
		mm := m
		start := Time(mm.val & 0xffffffff)
		s := owner(mm.node)
		if _, err := e.Shard(s).Kernel().AtArg(start, delivers[s], &mm); err != nil {
			t.Fatalf("sharded seed: %v", err)
		}
	}
	if err := e.RunUntil(horizon); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	return pworldResult{nodes: w.nodes, processed: e.Processed(), pending: e.Pending()}
}

func comparePWorlds(t *testing.T, label string, want, got pworldResult) {
	t.Helper()
	if want.processed != got.processed {
		t.Errorf("%s: processed %d, serial %d", label, got.processed, want.processed)
	}
	if want.pending != got.pending {
		t.Errorf("%s: pending %d, serial %d", label, got.pending, want.pending)
	}
	for i := range want.nodes {
		wn, gn := &want.nodes[i], &got.nodes[i]
		if wn.counter != gn.counter {
			t.Errorf("%s: node %d counter %d, serial %d", label, i, gn.counter, wn.counter)
		}
		if len(wn.log) != len(gn.log) {
			t.Errorf("%s: node %d log length %d, serial %d", label, i, len(gn.log), len(wn.log))
			continue
		}
		for j := range wn.log {
			if wn.log[j] != gn.log[j] {
				t.Errorf("%s: node %d log[%d] = %+v, serial %+v", label, i, j, gn.log[j], wn.log[j])
				break
			}
		}
	}
}

// TestEngineSerialEquivalence is the randomized determinism contract: the
// sharded engine must reproduce the serial kernel's behaviour exactly at
// every worker count, including counts that do not divide the node count.
func TestEngineSerialEquivalence(t *testing.T) {
	const (
		nodes   = 37
		L       = Time(1 * Millisecond)
		horizon = Time(2 * Second)
	)
	for seed := uint64(1); seed <= 25; seed++ {
		want := runSerialWorld(t, nodes, L, seed, horizon)
		for _, workers := range []int{1, 2, 3, 4, 8} {
			got := runShardedWorld(t, nodes, workers, L, seed, horizon)
			comparePWorlds(t, fmt.Sprintf("seed %d workers %d", seed, workers), want, got)
		}
		if t.Failed() {
			t.Fatalf("divergence at seed %d", seed)
		}
	}
}

// TestEngineDegenerateIsSerial pins the zero-overhead contract for the
// single-shard engine: RunUntil must forward to the serial kernel without
// ever starting worker goroutines or opening barrier windows.
func TestEngineDegenerateIsSerial(t *testing.T) {
	e := NewEngine(1)
	k := e.Shard(0).Kernel()
	fired := 0
	for i := 0; i < 10; i++ {
		d := Time(i) * Millisecond
		k.AfterTicks(d, func() { fired++ })
	}
	if err := e.RunUntil(Time(20 * Millisecond)); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Errorf("fired %d events, want 10", fired)
	}
	if e.started {
		t.Error("degenerate engine started worker goroutines")
	}
	if e.Windows() != 0 {
		t.Errorf("degenerate engine opened %d windows, want 0", e.Windows())
	}
	if e.Now() != Time(20*Millisecond) {
		t.Errorf("engine now %d, want %d", e.Now(), Time(20*Millisecond))
	}
}

// TestEngineInjectOrdering pins the comparator contract directly: a boundary
// event injected with an earlier schedule stamp must fire before a local
// event at the same instant that was scheduled later in virtual time, and
// after one scheduled earlier — exactly where the serial kernel would have
// placed it.
func TestEngineInjectOrdering(t *testing.T) {
	k := New()
	var order []string
	// Local event scheduled at virtual time 0 for t=100.
	if _, err := k.At(100, func() { order = append(order, "local-at0") }); err != nil {
		t.Fatal(err)
	}
	// Boundary event scheduled in its source shard at virtual time 40,
	// delivered at t=100.
	if err := k.InjectArg(100, 40, func(any) { order = append(order, "inject-at40") }, nil); err != nil {
		t.Fatal(err)
	}
	// Local event scheduled at virtual time 60 (after the injection's source
	// instant) for the same t=100: schedule it from inside an event at 60.
	if _, err := k.At(60, func() {
		if _, err := k.At(100, func() { order = append(order, "local-at60") }); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.RunUntil(200); err != nil {
		t.Fatal(err)
	}
	want := []string{"local-at0", "inject-at40", "local-at60"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}
