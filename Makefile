# Developer entry points. `make` with no target builds everything.

GO ?= go

.PHONY: all build test race vet lint lint-json race-assert race-parallel topo-equivalence fusion-equivalence figure-equivalence bench-smoke figures scale-bench parallel-bench million-bench scale-smoke serve-smoke serve-bench fusion-bench fusion-smoke profile clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs pdos-lint (the stdlib-only analyzer suite enforcing the
# determinism, pool-ownership, hot-path, float-equality, virtual-time,
# shard-isolation, and counter-conservation contracts — see DESIGN.md §10 and
# §15) over the module, then fails on any gofmt drift.
lint:
	$(GO) run ./cmd/pdos-lint ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# lint-json writes the machine-readable diagnostics to pdos-lint.json for the
# CI artifact (always written, even when findings make the tool exit 1 —
# `make lint` is the gate, this is the report).
lint-json:
	$(GO) run ./cmd/pdos-lint -json ./... > pdos-lint.json || true
	@echo "wrote pdos-lint.json"

# race-assert reruns the determinism/equivalence suites and the assertion
# tests with the pdosassert runtime invariants compiled in (pool
# double-release and leak accounting, kernel firing-order monotonicity,
# shard-boundary conservation) under the race detector.
race-assert:
	$(GO) test -race -tags pdosassert ./internal/sim ./internal/netem ./internal/tcp ./internal/experiments

# race-parallel drives the parallel-engine determinism contracts under the
# race detector: the randomized engine/topology equivalence suites and the
# cross-shard packet portal.
race-parallel:
	$(GO) test -race -run 'TestEngine|TestSharded|TestCrossShard' ./internal/sim ./internal/netem ./internal/experiments

# topo-equivalence is the topology-graph layer's contract gate: the legacy
# hand-wired builders (preserved as test-only references) versus topo.Build
# must produce byte-identical figure CSVs at 1/2/4/8 workers, for the
# dumbbell and the test-bed, and the new multi-bottleneck generators must
# hold serial ≡ sharded — all under the race detector.
topo-equivalence:
	$(GO) test -race -count=1 \
		-run 'TestSharded|TestTestbed|TestPlan|TestParkingLot|TestCrossTraffic|TestBuild' \
		./internal/experiments ./internal/topo

# fusion-equivalence is the event-fusion contract gate (DESIGN.md §14):
# randomized dumbbell, parking-lot, and cross-traffic scenarios built with
# GoldenLinks (the verbatim two-event serialize→propagate schedule) and on
# the default fused path must produce byte-identical observables — delivered
# bytes, per-flow accounts, TCP statistics, drop counters, normalized
# processed-event totals, figure CSVs — at 1/2/4/8 workers, while the fused
# build fires strictly fewer kernel events. Under the race detector.
fusion-equivalence:
	$(GO) test -race -count=1 -run TestFusionEquivalence ./internal/experiments

# figure-equivalence is the figure pipeline's migration contract gate: every
# figure regenerated through the scenario-native path (documents → run cache
# → artifact assembly, internal/figures) must equal its legacy
# internal/experiments driver byte for byte, and a warm AllFigures replay
# must be served entirely from the content-addressed cache. Under the race
# detector.
figure-equivalence:
	$(GO) test -race -count=1 -run 'TestFigureEquivalence|TestAllFiguresWarmCache' ./internal/figures

# bench-smoke runs the hot-path micro-benchmarks once — enough to catch an
# allocation or throughput regression without the full figure benches.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelEvents|BenchmarkLinkDropTail|BenchmarkLinkRED|BenchmarkREDEnqueue|BenchmarkTCPLoopbackSecond' -benchtime 1s .

# figures regenerates the quick-scale figure set with the hot-path benchmark
# report alongside.
figures:
	$(GO) run ./cmd/pdos-bench -scale quick -out results -parallel 4 -bench-json results/BENCH_1.json

# scale-bench regenerates the committed BENCH_2.json: the many-flow scaling
# sweep (100 → 50k victim flows, wheel vs heap kernel) plus the hot paths.
# Takes tens of minutes; run it on an otherwise idle machine.
scale-bench:
	$(GO) run ./cmd/pdos-bench -scale-bench BENCH_2.json

# parallel-bench regenerates the committed BENCH_3.json: the conservative
# parallel engine vs the serial wheel kernel at 2/4/8 workers over 10k and
# 50k flows. Takes tens of minutes; the ≥2.5x speedup floor only means
# anything on a machine with ≥4 idle cores.
parallel-bench:
	$(GO) run ./cmd/pdos-bench -parallel-bench BENCH_3.json -workers 2,4,8

# million-bench regenerates the committed BENCH_4.json: the mixed-fidelity
# scale sweep up to one million flows (10k packet-accurate foreground + a
# fluid-aggregated background). Takes ~10+ minutes on one idle core.
million-bench:
	$(GO) run ./cmd/pdos-bench -scale-bench BENCH_4.json \
		-foreground-flows 10000 -scale-flows 10000,100000,1000000

# scale-smoke is the CI-sized slice of million-bench: a tiny two-point
# mixed-fidelity sweep with truncated measurement windows and the heap guard
# armed, exercising the foreground/fluid split, the OOM-skip bookkeeping,
# and the report schema end to end in under a minute. The report goes to a
# scratch file — only the full million-bench run updates BENCH_4.json.
scale-smoke:
	$(GO) run ./cmd/pdos-bench -scale-bench /tmp/scale-smoke.json \
		-foreground-flows 200 -scale-flows 200,2000 \
		-scale-measure-sec 3 -max-heap-mb 4096

# serve-smoke is the pdos-serve CI gate: the shipped fig8-style scenario
# submitted twice over real HTTP — the first run computes, the second must be
# a byte-identical cache hit, and both must match a direct kernel recompute.
serve-smoke:
	$(GO) test -race -count=1 -run TestServeSmoke ./internal/serve

# serve-bench regenerates the committed BENCH_5.json: a live pdos-serve
# instance with a fresh cache, one scenario sweep cold and the same sweep
# warm, recording the memoization speedup (guarded at >= 10x), the cache
# counters, and the byte-identity of cached artifacts vs direct recomputes.
serve-bench:
	$(GO) run ./cmd/pdos-bench -serve-bench BENCH_5.json

# fusion-bench regenerates the committed BENCH_6.json: the attacked 10k-flow
# scale point on the golden two-event link schedule versus the fused
# one-event-per-hop default (DESIGN.md §14), recording the raw
# kernel-events-per-packet reduction (guarded at >= 25%), the wall speedup,
# allocs/packet, and the byte-identity checks. Takes ~5 minutes on one idle
# core.
fusion-bench:
	$(GO) run ./cmd/pdos-bench -fusion-bench BENCH_6.json -fusion-flows 10000

# fusion-smoke is the CI-sized slice of fusion-bench: the same golden-vs-
# fused pipeline at a 200-flow population with truncated windows, asserting
# the report schema, the byte-identity bits, and that fusion actually elides
# events, in seconds. The report goes to a scratch file — only the full
# fusion-bench run updates BENCH_6.json.
fusion-smoke:
	$(GO) run ./cmd/pdos-bench -fusion-bench /tmp/fusion-smoke.json \
		-fusion-flows 200 -scale-measure-sec 3

# profile captures CPU and heap pprof profiles of a representative figure
# regeneration for `go tool pprof cpu.pprof` digestion.
profile:
	$(GO) run ./cmd/pdos-bench -scale quick -figures fig6 -out results \
		-cpuprofile cpu.pprof -memprofile mem.pprof

clean:
	rm -rf results cpu.pprof mem.pprof
