# Developer entry points. `make` with no target builds everything.

GO ?= go

.PHONY: all build test race vet bench-smoke figures scale-bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench-smoke runs the hot-path micro-benchmarks once — enough to catch an
# allocation or throughput regression without the full figure benches.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelEvents|BenchmarkLinkDropTail|BenchmarkLinkRED|BenchmarkREDEnqueue|BenchmarkTCPLoopbackSecond' -benchtime 1s .

# figures regenerates the quick-scale figure set with the hot-path benchmark
# report alongside.
figures:
	$(GO) run ./cmd/pdos-bench -scale quick -out results -parallel 4 -bench-json results/BENCH_1.json

# scale-bench regenerates the committed BENCH_2.json: the many-flow scaling
# sweep (100 → 50k victim flows, wheel vs heap kernel) plus the hot paths.
# Takes tens of minutes; run it on an otherwise idle machine.
scale-bench:
	$(GO) run ./cmd/pdos-bench -scale-bench BENCH_2.json

clean:
	rm -rf results
