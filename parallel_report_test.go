package pulsedos

import (
	"encoding/json"
	"os"
	"testing"

	"pulsedos/internal/perf"
)

// TestParallelReportBudgets guards the committed parallel-engine speedup
// study: BENCH_3.json (regenerated with `pdos-bench -parallel-bench
// BENCH_3.json`) must parse into the perf schema and uphold its budgets.
// Determinism and allocation budgets are unconditional — they hold on any
// hardware. The speedup floor is physics: a conservative parallel engine
// cannot beat serial wall-clock without cores to run on, so the ≥2.5x bar at
// 4 workers applies only when the recorded host had ≥4 CPUs available; a
// report generated on a smaller machine records honest numbers and the floor
// re-arms the next time the report is regenerated on real parallel hardware.
func TestParallelReportBudgets(t *testing.T) {
	data, err := os.ReadFile("BENCH_3.json")
	if err != nil {
		t.Fatalf("BENCH_3.json must be committed: %v", err)
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_3.json does not parse into perf.Report: %v", err)
	}
	if len(rep.Parallel) == 0 {
		t.Fatal("report carries no parallel scale points")
	}

	cores := rep.NumCPU
	if rep.MaxProcs > 0 && rep.MaxProcs < cores {
		cores = rep.MaxProcs
	}

	var saw10kx4 bool
	for _, p := range rep.Parallel {
		if p.AllocsPerPacket > 0.01 {
			t.Errorf("parallel %d flows x %d workers: %.4f allocs/packet, want 0",
				p.Flows, p.Workers, p.AllocsPerPacket)
		}
		if p.Workers > 1 && !p.MatchesSerial {
			t.Errorf("parallel %d flows x %d workers: diverged from the serial kernel",
				p.Flows, p.Workers)
		}
		if p.Workers > 1 && p.Windows == 0 {
			t.Errorf("parallel %d flows x %d workers: engine ran no conservative windows",
				p.Flows, p.Workers)
		}
		if p.Flows >= 10000 && p.Workers == 4 {
			saw10kx4 = true
			if cores >= 4 && p.SpeedupVsSerial < 2.5 {
				t.Errorf("parallel %d flows x 4 workers: %.2fx vs serial is below the 2.5x floor (host had %d cores)",
					p.Flows, p.SpeedupVsSerial, cores)
			}
			if cores < 4 {
				t.Logf("speedup floor skipped: report generated on a %d-core host (measured %.2fx at 4 workers)",
					cores, p.SpeedupVsSerial)
			}
		}
	}
	if !saw10kx4 {
		t.Error("report lacks the 10k-flow, 4-worker cell")
	}

	// A parallel report has no hot-path microbenchmarks: the "benchmarks"
	// key must either be omitted entirely (the omitempty contract) or carry
	// a non-empty list. An explicit `"benchmarks": []` is the regression
	// this guards against — it reads as "benchmarks ran and found nothing".
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("BENCH_3.json does not parse as an object: %v", err)
	}
	if b, ok := raw["benchmarks"]; ok {
		var list []json.RawMessage
		if err := json.Unmarshal(b, &list); err != nil {
			t.Fatalf("benchmarks key is not a list: %v", err)
		}
		if len(list) == 0 {
			t.Error(`report carries an explicit empty "benchmarks": [] — the key must be omitted when no benchmarks ran`)
		}
	}
}
