// Command pdos-serve is the memoized scenario-execution daemon: an HTTP/JSON
// front-end over the content-addressed run cache. Submit a scenario document
// and get its artifacts back; submit the same document (under any cosmetic
// spelling) twice and the second answer comes from disk without touching the
// simulation kernel.
//
// Example:
//
//	pdos-serve -addr 127.0.0.1:8973 -cache results/cache -cache-mb 512 -workers 4
//	curl -s --data-binary @scenarios/fig8-style.json 'localhost:8973/runs?wait=1'
//	curl -s localhost:8973/status
//
// Endpoints (see internal/serve):
//
//	POST   /runs[?priority=N][&wait=1][&stream=1]
//	GET    /runs/{id}
//	GET    /runs/{id}/artifacts/{name}
//	GET    /runs/{id}/events
//	DELETE /runs/{id}
//	GET    /status
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pulsedos/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8973", "listen address")
		cacheDir   = fs.String("cache", "results/cache", "content-addressed artifact store root")
		cacheMB    = fs.Int64("cache-mb", 512, "cache byte budget in MiB (0 = unbounded)")
		workers    = fs.Int("workers", max(1, runtime.NumCPU()/2), "concurrent scenario runs")
		maxPending = fs.Int("max-pending", 64, "queued-job admission limit (beyond it: 503)")
		maxHeapMB  = fs.Uint64("max-heap-mb", 4096, "per-run projected heap budget in MiB (0 = unlimited)")
		maxWall    = fs.Duration("max-run-wall", 10*time.Minute, "per-run wall-clock budget (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := serve.New(serve.Options{
		CacheDir:      *cacheDir,
		CacheMaxBytes: *cacheMB << 20,
		Workers:       *workers,
		MaxPending:    *maxPending,
		MaxHeapBytes:  *maxHeapMB << 20,
		MaxRunWall:    *maxWall,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	st := s.Cache().Stats()
	fmt.Fprintf(os.Stderr, "pdos-serve: listening on %s (cache %s: %d entries, %d bytes)\n",
		*addr, *cacheDir, st.Entries, st.Bytes)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "pdos-serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
