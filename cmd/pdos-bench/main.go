// Command pdos-bench regenerates every table and figure of the paper's
// evaluation (§4): Figs. 1–4, 6–10, and 12 plus the Proposition 3
// cross-validation, the design ablations, and the extension studies. Series
// are written as CSV files into -out, with an optional single-page SVG
// report (-html); summary notes are printed to stdout. Figures fan out
// across -parallel workers (each on a private kernel, so the CSVs are
// byte-identical to a sequential run). With -bench-json the command also
// measures the simulator's hot paths and writes a machine-readable
// benchmark report (ns/op, allocs/op, events/sec, peak gain per figure).
//
// Example:
//
// With -scale-bench the command instead runs the many-flow scaling sweep
// (100 → 50k victim flows through a proportionally scaled pulsed bottleneck,
// wheel kernel vs heap-kernel baseline) plus the hot paths, and writes the
// combined report (BENCH_2.json shape) to the given path; figures are skipped
// unless -figures selects some. Adding -foreground-flows N switches to the
// million-flow mode (BENCH_4.json shape): N packet-accurate flows per point,
// the rest of the population on the fluid macroflow tier; -scale-flows
// overrides the populations, -max-heap-mb guards against OOM by recording
// oversized points as skipped, and -scale-measure-sec shortens the windows
// for smoke runs.
//
// With -parallel-bench the command runs the parallel-engine speedup study
// (serial wheel kernel vs the conservative sharded engine at each -workers
// count, per -parallel-flows population) and writes the report (BENCH_3.json
// shape) to the given path.
//
// -cpuprofile and -memprofile write pprof profiles covering whichever mode
// ran, for `go tool pprof` digestion (see `make profile`).
//
// Example:
//
//	pdos-bench -scale quick -out results/ -html
//	pdos-bench -scale full -figures fig6,fig12 -parallel 8
//	pdos-bench -scale quick -bench-json results/BENCH_1.json
//	pdos-bench -scale-bench BENCH_2.json
//	pdos-bench -parallel-bench BENCH_3.json -workers 2,4,8
//	pdos-bench -scale-bench BENCH_4.json -foreground-flows 10000 -scale-flows 10000,100000,1000000
//	pdos-bench -scale quick -figures fig6 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/perf"
	"pulsedos/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-bench:", err)
		os.Exit(1)
	}
}

// jobs returns every regenerable figure in paper order: the paper's own
// plots first, then the ablations and extension studies.
func jobs() []experiments.FigureJob {
	return append(experiments.PaperFigures(), experiments.ExtendedFigures()...)
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-bench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "quick or full")
		out       = fs.String("out", "results", "output directory for CSV series")
		only      = fs.String("figures", "", "comma-separated figure ids (default: all)")
		htmlOut   = fs.Bool("html", false, "also write <out>/index.html with SVG charts")
		parallel  = fs.Int("parallel", 1, "figure-level worker count (1 = sequential)")
		benchJSON = fs.String("bench-json", "", "write a hot-path benchmark report to this path")
		scaleJSON = fs.String("scale-bench", "", "run the many-flow scaling sweep and write the report to this path")
		scFlows   = fs.String("scale-flows", "", "comma-separated flow populations for -scale-bench (default: the BENCH_2 sweep)")
		scFg      = fs.Int("foreground-flows", 0, "packet-accurate foreground cap for -scale-bench; populations above it run a fluid background tier (the BENCH_4 million-flow mode)")
		scHeapMB  = fs.Int("max-heap-mb", 0, "skip -scale-bench points whose projected footprint exceeds this many MiB, recording them as skipped_oom")
		scMeasure = fs.Float64("scale-measure-sec", 0, "override the -scale-bench measurement window, seconds (smoke runs)")
		parJSON   = fs.String("parallel-bench", "", "run the parallel-engine speedup study and write the report to this path")
		workers   = fs.String("workers", "2,4,8", "comma-separated worker counts for -parallel-bench")
		parFlows  = fs.String("parallel-flows", "10000,50000", "comma-separated flow populations for -parallel-bench")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProf   = fs.String("memprofile", "", "write a heap profile to this path on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("== cpu profile -> %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pdos-bench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pdos-bench: memprofile:", err)
			}
			f.Close()
			fmt.Printf("== heap profile -> %s\n", *memProf)
		}()
	}
	if *parJSON != "" {
		return runParallelBench(*parJSON, *workers, *parFlows)
	}
	if *scaleJSON != "" {
		return runScaleBench(*scaleJSON, *scFlows, *scFg, *scHeapMB, *scMeasure)
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	// Open the report file up front: an unwritable path should fail before
	// the figures and hot-path benches spend minutes of work.
	var benchOut *os.File
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			return err
		}
		benchOut = f
		defer benchOut.Close()
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	selected := jobs()
	if len(wanted) > 0 {
		kept := selected[:0]
		for _, j := range selected {
			if wanted[j.ID] {
				kept = append(kept, j)
			}
		}
		selected = kept
	}

	start := time.Now()
	generated, err := experiments.RunFigureJobs(selected, scale, *parallel)
	if err != nil {
		return err
	}
	for _, fig := range generated {
		path := filepath.Join(*out, fig.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := experiments.WriteSeriesCSV(f, fig.Series)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== %s: %s -> %s\n", fig.ID, fig.Title, path)
		for _, n := range fig.Notes {
			fmt.Printf("   %s\n", n)
		}
	}
	fmt.Printf("== %d figures in %.1fs (parallel=%d)\n", len(generated), time.Since(start).Seconds(), *parallel)

	if *htmlOut {
		path := filepath.Join(*out, "index.html")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := report.WriteHTML(f, "pulsedos — regenerated figures ("+*scaleName+" scale)", generated)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== report -> %s\n", path)
	}

	if benchOut != nil {
		fmt.Println("== measuring hot paths (this takes a minute)...")
		results := perf.RunHotPaths()
		peaks := make([]perf.FigurePeak, 0, len(generated))
		for _, fig := range generated {
			peaks = append(peaks, perf.PeakOf(fig))
		}
		rep := perf.NewReport(results, peaks)
		writeErr := perf.WriteJSON(benchOut, rep)
		closeErr := benchOut.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		for _, r := range rep.Benchmarks {
			fmt.Printf("   %-20s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
			if r.BaselineNsPerOp > 0 {
				fmt.Printf("   (%+.1f%% vs baseline %0.1f ns/op)", r.SpeedupPct, r.BaselineNsPerOp)
			}
			fmt.Println()
		}
		fmt.Printf("== bench report -> %s\n", *benchJSON)
	}
	return nil
}

// runScaleBench executes the BENCH_2/BENCH_4 pipeline: the many-flow scaling
// sweep (sequential — each point owns the process's wall clock and allocator
// counters) followed by the hot-path micro-benchmarks, written as one report.
// foreground > 0 selects the million-flow mode: that many packet-accurate
// flows, the rest of each population on the fluid macroflow tier, heap
// baseline off (BENCH_4.json shape).
func runScaleBench(path, flowsCSV string, foreground, maxHeapMB int, measureSec float64) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cfg := experiments.DefaultScaleSweepConfig()
	if foreground > 0 {
		cfg = experiments.MillionFlowSweepConfig()
		cfg.ForegroundFlows = foreground
	}
	if flowsCSV != "" {
		flows, err := parseIntList(flowsCSV)
		if err != nil {
			return fmt.Errorf("-scale-flows: %w", err)
		}
		cfg.FlowCounts = flows
	}
	if maxHeapMB > 0 {
		cfg.MaxHeapBytes = uint64(maxHeapMB) << 20
	}
	if measureSec > 0 {
		cfg.Measure = time.Duration(measureSec * float64(time.Second))
		cfg.ShortMeasure = cfg.Measure
		cfg.Warmup = cfg.Measure
	}
	start := time.Now()
	points, err := experiments.ScaleSweep(cfg, func(msg string) {
		fmt.Println("== " + msg)
	})
	if err != nil {
		return err
	}
	fmt.Printf("== scale sweep done in %.1fs; measuring hot paths...\n", time.Since(start).Seconds())
	rep := perf.NewReport(perf.RunHotPaths(), nil)
	rep.Scale = points
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("   %-24s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.BaselineNsPerOp > 0 {
			fmt.Printf("   (%+.1f%% vs baseline %0.1f ns/op)", r.SpeedupPct, r.BaselineNsPerOp)
		}
		fmt.Println()
	}
	for _, p := range rep.Scale {
		if p.SkippedOOM {
			fmt.Printf("   scale %8d flows: skipped (heap guard)\n", p.Flows)
			continue
		}
		fmt.Printf("   scale %8d flows", p.Flows)
		if p.FluidFlows > 0 {
			fmt.Printf(" (%d packet + %d fluid)", p.PacketFlows, p.FluidFlows)
		}
		fmt.Printf(": %.2fM events/sec", p.EventsPerSec/1e6)
		if p.SpeedupVsHeap > 0 {
			fmt.Printf(" (%.2fx vs heap)", p.SpeedupVsHeap)
		}
		fmt.Printf(", %.1f ns/flow/vsec, %.4f allocs/packet, RSS %.0f MiB\n",
			p.NsPerFlowPerSec, p.AllocsPerPacket, float64(p.PeakRSSBytes)/(1<<20))
	}
	fmt.Printf("== scale bench report -> %s\n", path)
	return nil
}

// runParallelBench executes the BENCH_3 pipeline: for each configured flow
// population, the attacked scale scenario on the serial wheel kernel and then
// on the conservative parallel engine at each worker count, reporting
// wall-clock, events/sec, allocs/packet, and the determinism check per cell.
// Cells run sequentially because each one times wall-clock and reads the
// allocator counters.
func runParallelBench(path, workersCSV, flowsCSV string) error {
	workerCounts, err := parseIntList(workersCSV)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	flowCounts, err := parseIntList(flowsCSV)
	if err != nil {
		return fmt.Errorf("-parallel-flows: %w", err)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cfg := experiments.DefaultScaleSweepConfig()
	cfg.FlowCounts = flowCounts
	start := time.Now()
	points, err := experiments.ShardSweep(cfg, workerCounts, func(msg string) {
		fmt.Println("== " + msg)
	})
	if err != nil {
		return err
	}
	fmt.Printf("== parallel sweep done in %.1fs\n", time.Since(start).Seconds())
	// No hot-path micro-benchmarks in this mode: nil keeps the report's
	// "benchmarks" key absent (omitempty) instead of an empty literal.
	rep := perf.NewReport(nil, nil)
	rep.Parallel = points
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	for _, p := range rep.Parallel {
		fmt.Printf("   parallel %6d flows x %d workers: %6.1fs wall, %.2fM events/sec, %.4f allocs/packet",
			p.Flows, p.Workers, p.WallSeconds, p.EventsPerSec/1e6, p.AllocsPerPacket)
		if p.Workers > 1 {
			fmt.Printf(", %.2fx serial, match=%v", p.SpeedupVsSerial, p.MatchesSerial)
		}
		fmt.Println()
	}
	fmt.Printf("== parallel bench report -> %s\n", path)
	return nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
