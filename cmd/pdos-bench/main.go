// Command pdos-bench regenerates every table and figure of the paper's
// evaluation (§4): Figs. 1–4, 6–10, and 12 plus the Proposition 3
// cross-validation, the design ablations, and the extension studies. Series
// are written as CSV files into -out, with an optional single-page SVG
// report (-html); summary notes are printed to stdout.
//
// Example:
//
//	pdos-bench -scale quick -out results/ -html
//	pdos-bench -scale full -figures fig6,fig12
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-bench:", err)
		os.Exit(1)
	}
}

// builders maps figure ids to their regeneration functions, in paper order.
func builders() []struct {
	id    string
	build func(experiments.Scale) (*experiments.FigureResult, error)
} {
	return []struct {
		id    string
		build func(experiments.Scale) (*experiments.FigureResult, error)
	}{
		{"fig1", experiments.Figure1},
		{"fig2", experiments.Figure2},
		{"fig3a", experiments.Figure3a},
		{"fig3b", experiments.Figure3b},
		{"fig4", experiments.Figure4},
		{"fig6", experiments.Figure6},
		{"fig7", experiments.Figure7},
		{"fig8", experiments.Figure8},
		{"fig9", experiments.Figure9},
		{"fig10", experiments.Figure10},
		{"fig12", experiments.Figure12},
		{"prop3", func(experiments.Scale) (*experiments.FigureResult, error) {
			return experiments.OptimalityCheck()
		}},
		{"ablation-aqm", experiments.AblationREDvsDropTail},
		{"ablation-dack", experiments.AblationDelayedACK},
		{"ablation-aimd", experiments.AblationAIMD},
		{"ablation-pktsize", experiments.AblationAttackPacketSize},
		{"ext-defense", experiments.DefenseFigure},
		{"ext-mice", experiments.MiceFigure},
		{"ext-maximization", experiments.MaximizationFigure},
		{"ext-sensitivity", experiments.SensitivityFigure},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-bench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "quick or full")
		out       = fs.String("out", "results", "output directory for CSV series")
		only      = fs.String("figures", "", "comma-separated figure ids (default: all)")
		htmlOut   = fs.Bool("html", false, "also write <out>/index.html with SVG charts")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	var generated []*experiments.FigureResult
	for _, b := range builders() {
		if len(wanted) > 0 && !wanted[b.id] {
			continue
		}
		start := time.Now()
		fig, err := b.build(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", b.id, err)
		}
		generated = append(generated, fig)
		path := filepath.Join(*out, fig.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := experiments.WriteSeriesCSV(f, fig.Series)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== %s: %s (%.1fs) -> %s\n", fig.ID, fig.Title, time.Since(start).Seconds(), path)
		for _, n := range fig.Notes {
			fmt.Printf("   %s\n", n)
		}
	}
	if *htmlOut {
		path := filepath.Join(*out, "index.html")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := report.WriteHTML(f, "pulsedos — regenerated figures ("+*scaleName+" scale)", generated)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== report -> %s\n", path)
	}
	return nil
}
