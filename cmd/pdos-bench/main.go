// Command pdos-bench regenerates every table and figure of the paper's
// evaluation (§4): Figs. 1–4, 6–10, and 12 plus the Proposition 3
// cross-validation, the design ablations, and the extension studies. Series
// are written as CSV files into -out, with an optional single-page SVG
// report (-html); summary notes are printed to stdout. Each figure is
// compiled into scenario documents and executed through the scenario-native
// pipeline (internal/figures); the expanded points fan out across -parallel
// workers (each on a private kernel, so the CSVs are byte-identical to a
// sequential run). With -bench-json the command also
// measures the simulator's hot paths and writes a machine-readable
// benchmark report (ns/op, allocs/op, events/sec, peak gain per figure).
//
// Example:
//
// With -scale-bench the command instead runs the many-flow scaling sweep
// (100 → 50k victim flows through a proportionally scaled pulsed bottleneck,
// wheel kernel vs heap-kernel baseline) plus the hot paths, and writes the
// combined report (BENCH_2.json shape) to the given path; figures are skipped
// unless -figures selects some. Adding -foreground-flows N switches to the
// million-flow mode (BENCH_4.json shape): N packet-accurate flows per point,
// the rest of the population on the fluid macroflow tier; -scale-flows
// overrides the populations, -max-heap-mb guards against OOM by recording
// oversized points as skipped, and -scale-measure-sec shortens the windows
// for smoke runs.
//
// With -parallel-bench the command runs the parallel-engine speedup study
// (serial wheel kernel vs the conservative sharded engine at each -workers
// count, per -parallel-flows population) and writes the report (BENCH_3.json
// shape) to the given path.
//
// With -serve-bench the command runs the memoization study (BENCH_5.json
// shape): a live pdos-serve instance on a loopback listener with a fresh
// content-addressed cache, one scenario sweep submitted cold (every document
// computes on the worker pool) and the same sweep again warm (every document
// answered from the cache without touching the kernel), plus a byte-identity
// check of the cached artifacts against direct kernel recomputes.
//
// With -fusion-bench the command runs the event-fusion study (BENCH_6.json
// shape): the attacked -fusion-flows scale point on the golden two-event
// serialize→propagate link schedule and again on the fused
// one-event-per-hop default, reporting the kernel-events-per-packet
// reduction, the wall-clock speedup, and the byte-identity checks;
// -scale-measure-sec shortens the windows for smoke runs.
//
// -cache routes figure regeneration and -scale-bench points through a
// persistent content-addressed cache directory: re-running a sweep whose
// parameters and engine version are unchanged replays from disk.
//
// -cpuprofile and -memprofile write pprof profiles covering whichever mode
// ran, for `go tool pprof` digestion (see `make profile`).
//
// Example:
//
//	pdos-bench -scale quick -out results/ -html
//	pdos-bench -scale full -figures fig6,fig12 -parallel 8
//	pdos-bench -scale quick -bench-json results/BENCH_1.json
//	pdos-bench -scale-bench BENCH_2.json
//	pdos-bench -parallel-bench BENCH_3.json -workers 2,4,8
//	pdos-bench -scale-bench BENCH_4.json -foreground-flows 10000 -scale-flows 10000,100000,1000000
//	pdos-bench -serve-bench BENCH_5.json
//	pdos-bench -fusion-bench BENCH_6.json -fusion-flows 10000
//	pdos-bench -scale quick -cache results/cache
//	pdos-bench -scale quick -figures fig6 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/figures"
	"pulsedos/internal/perf"
	"pulsedos/internal/report"
	"pulsedos/internal/runcache"
	"pulsedos/internal/scenario"
	"pulsedos/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-bench", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "quick", "quick or full")
		out       = fs.String("out", "results", "output directory for CSV series")
		only      = fs.String("figures", "", "comma-separated figure ids (default: all)")
		htmlOut   = fs.Bool("html", false, "also write <out>/index.html with SVG charts")
		parallel  = fs.Int("parallel", 1, "figure-level worker count (1 = sequential)")
		benchJSON = fs.String("bench-json", "", "write a hot-path benchmark report to this path")
		scaleJSON = fs.String("scale-bench", "", "run the many-flow scaling sweep and write the report to this path")
		scFlows   = fs.String("scale-flows", "", "comma-separated flow populations for -scale-bench (default: the BENCH_2 sweep)")
		scFg      = fs.Int("foreground-flows", 0, "packet-accurate foreground cap for -scale-bench; populations above it run a fluid background tier (the BENCH_4 million-flow mode)")
		scHeapMB  = fs.Int("max-heap-mb", 0, "skip -scale-bench points whose projected footprint exceeds this many MiB, recording them as skipped_oom")
		scMeasure = fs.Float64("scale-measure-sec", 0, "override the -scale-bench measurement window, seconds (smoke runs)")
		parJSON   = fs.String("parallel-bench", "", "run the parallel-engine speedup study and write the report to this path")
		workers   = fs.String("workers", "2,4,8", "comma-separated worker counts for -parallel-bench")
		parFlows  = fs.String("parallel-flows", "10000,50000", "comma-separated flow populations for -parallel-bench")
		serveJSON = fs.String("serve-bench", "", "run the pdos-serve memoization study and write the report to this path")
		serveWkr  = fs.Int("serve-workers", 2, "worker-pool size for -serve-bench")
		fuseJSON  = fs.String("fusion-bench", "", "run the event-fusion study (golden two-event vs fused link schedule) and write the report to this path")
		fuseFlows = fs.Int("fusion-flows", 10000, "victim population for -fusion-bench")
		cacheDir  = fs.String("cache", "", "content-addressed run cache directory for figures and -scale-bench (empty = uncached)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this path")
		memProf   = fs.String("memprofile", "", "write a heap profile to this path on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("== cpu profile -> %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pdos-bench: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pdos-bench: memprofile:", err)
			}
			f.Close()
			fmt.Printf("== heap profile -> %s\n", *memProf)
		}()
	}
	if *fuseJSON != "" {
		return runFusionBench(*fuseJSON, *fuseFlows, *scMeasure)
	}
	if *serveJSON != "" {
		return runServeBench(*serveJSON, *serveWkr)
	}
	if *parJSON != "" {
		return runParallelBench(*parJSON, *workers, *parFlows)
	}
	// The persistent cache is shared by the figure pipeline and -scale-bench.
	var store *runcache.Store
	if *cacheDir != "" {
		var err error
		store, err = runcache.Open(*cacheDir, 0)
		if err != nil {
			return fmt.Errorf("-cache: %w", err)
		}
	}
	if *scaleJSON != "" {
		return runScaleBench(*scaleJSON, *scFlows, *scFg, *scHeapMB, *scMeasure, store)
	}
	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	// Open the report file up front: an unwritable path should fail before
	// the figures and hot-path benches spend minutes of work.
	var benchOut *os.File
	if *benchJSON != "" {
		f, err := os.Create(*benchJSON)
		if err != nil {
			return err
		}
		benchOut = f
		defer benchOut.Close()
	}
	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}
	selected := figures.IDs()
	if len(wanted) > 0 {
		kept := selected[:0]
		for _, id := range selected {
			if wanted[id] {
				kept = append(kept, id)
				delete(wanted, id)
			}
		}
		selected = kept
		for id := range wanted {
			return fmt.Errorf("-figures: unknown figure %q (known: %s)", id, strings.Join(figures.IDs(), ","))
		}
	}

	start := time.Now()
	generated, err := figures.RunJobs(context.Background(), selected, scale,
		figures.Options{Cache: store, Parallel: *parallel})
	if err != nil {
		return err
	}
	for _, fig := range generated {
		path := filepath.Join(*out, fig.ID+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := experiments.WriteSeriesCSV(f, fig.Series)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== %s: %s -> %s\n", fig.ID, fig.Title, path)
		for _, n := range fig.Notes {
			fmt.Printf("   %s\n", n)
		}
	}
	fmt.Printf("== %d figures in %.1fs (parallel=%d)\n", len(generated), time.Since(start).Seconds(), *parallel)
	if store != nil {
		st := store.Stats()
		fmt.Printf("== cache %s: %d hits, %d misses, %d entries (%.1f MiB)\n",
			*cacheDir, st.Hits, st.Misses, st.Entries, float64(st.Bytes)/(1<<20))
	}

	if *htmlOut {
		path := filepath.Join(*out, "index.html")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		writeErr := report.WriteHTML(f, "pulsedos — regenerated figures ("+*scaleName+" scale)", generated)
		closeErr := f.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		fmt.Printf("== report -> %s\n", path)
	}

	if benchOut != nil {
		fmt.Println("== measuring hot paths (this takes a minute)...")
		results := perf.RunHotPaths()
		peaks := make([]perf.FigurePeak, 0, len(generated))
		for _, fig := range generated {
			peaks = append(peaks, perf.PeakOf(fig))
		}
		rep := perf.NewReport(results, peaks)
		writeErr := perf.WriteJSON(benchOut, rep)
		closeErr := benchOut.Close()
		if writeErr != nil {
			return writeErr
		}
		if closeErr != nil {
			return closeErr
		}
		for _, r := range rep.Benchmarks {
			fmt.Printf("   %-20s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
			if r.BaselineNsPerOp > 0 {
				fmt.Printf("   (%+.1f%% vs baseline %0.1f ns/op)", r.SpeedupPct, r.BaselineNsPerOp)
			}
			fmt.Println()
		}
		fmt.Printf("== bench report -> %s\n", *benchJSON)
	}
	return nil
}

// runScaleBench executes the BENCH_2/BENCH_4 pipeline: the many-flow scaling
// sweep (sequential — each point owns the process's wall clock and allocator
// counters) followed by the hot-path micro-benchmarks, written as one report.
// foreground > 0 selects the million-flow mode: that many packet-accurate
// flows, the rest of each population on the fluid macroflow tier, heap
// baseline off (BENCH_4.json shape). A non-nil store memoizes sweep points:
// physics replay exactly, perf fields as recorded at compute time.
func runScaleBench(path, flowsCSV string, foreground, maxHeapMB int, measureSec float64, store *runcache.Store) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cfg := experiments.DefaultScaleSweepConfig()
	if foreground > 0 {
		cfg = experiments.MillionFlowSweepConfig()
		cfg.ForegroundFlows = foreground
	}
	if flowsCSV != "" {
		flows, err := parseIntList(flowsCSV)
		if err != nil {
			return fmt.Errorf("-scale-flows: %w", err)
		}
		cfg.FlowCounts = flows
	}
	if maxHeapMB > 0 {
		cfg.MaxHeapBytes = uint64(maxHeapMB) << 20
	}
	if measureSec > 0 {
		cfg.Measure = time.Duration(measureSec * float64(time.Second))
		cfg.ShortMeasure = cfg.Measure
		cfg.Warmup = cfg.Measure
	}
	cfg.Cache = store
	start := time.Now()
	points, err := experiments.ScaleSweep(cfg, func(msg string) {
		fmt.Println("== " + msg)
	})
	if err != nil {
		return err
	}
	fmt.Printf("== scale sweep done in %.1fs; measuring hot paths...\n", time.Since(start).Seconds())
	rep := perf.NewReport(perf.RunHotPaths(), nil)
	rep.Scale = points
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	for _, r := range rep.Benchmarks {
		fmt.Printf("   %-24s %12.1f ns/op %6d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.BaselineNsPerOp > 0 {
			fmt.Printf("   (%+.1f%% vs baseline %0.1f ns/op)", r.SpeedupPct, r.BaselineNsPerOp)
		}
		fmt.Println()
	}
	for _, p := range rep.Scale {
		if p.SkippedOOM {
			fmt.Printf("   scale %8d flows: skipped (heap guard)\n", p.Flows)
			continue
		}
		fmt.Printf("   scale %8d flows", p.Flows)
		if p.FluidFlows > 0 {
			fmt.Printf(" (%d packet + %d fluid)", p.PacketFlows, p.FluidFlows)
		}
		fmt.Printf(": %.2fM events/sec", p.EventsPerSec/1e6)
		if p.SpeedupVsHeap > 0 {
			fmt.Printf(" (%.2fx vs heap)", p.SpeedupVsHeap)
		}
		fmt.Printf(", %.1f ns/flow/vsec, %.4f allocs/packet, RSS %.0f MiB\n",
			p.NsPerFlowPerSec, p.AllocsPerPacket, float64(p.PeakRSSBytes)/(1<<20))
	}
	fmt.Printf("== scale bench report -> %s\n", path)
	return nil
}

// runFusionBench executes the BENCH_6 pipeline: the attacked scale scenario
// at one population, run on the golden two-event link schedule and again on
// the fused one-event-per-hop default, reporting raw kernel events per
// packet, wall-clock, allocs/packet, and the byte-identity checks. The two
// legs run sequentially because each times wall-clock and reads the
// allocator counters. measureSec > 0 shortens the windows for smoke runs.
func runFusionBench(path string, flows int, measureSec float64) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cfg := experiments.DefaultFusionBenchConfig()
	cfg.Flows = flows
	if measureSec > 0 {
		cfg.Scale.Measure = time.Duration(measureSec * float64(time.Second))
		cfg.Scale.ShortMeasure = cfg.Scale.Measure
		cfg.Scale.Warmup = cfg.Scale.Measure
	}
	res, err := experiments.FusionBench(cfg, func(msg string) {
		fmt.Println("== " + msg)
	})
	if err != nil {
		return err
	}
	rep := perf.NewReport(nil, nil)
	rep.Fusion = res
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	fmt.Printf("== fusion bench report -> %s\n", path)
	return nil
}

// runParallelBench executes the BENCH_3 pipeline: for each configured flow
// population, the attacked scale scenario on the serial wheel kernel and then
// on the conservative parallel engine at each worker count, reporting
// wall-clock, events/sec, allocs/packet, and the determinism check per cell.
// Cells run sequentially because each one times wall-clock and reads the
// allocator counters.
func runParallelBench(path, workersCSV, flowsCSV string) error {
	workerCounts, err := parseIntList(workersCSV)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	flowCounts, err := parseIntList(flowsCSV)
	if err != nil {
		return fmt.Errorf("-parallel-flows: %w", err)
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cfg := experiments.DefaultScaleSweepConfig()
	cfg.FlowCounts = flowCounts
	start := time.Now()
	points, err := experiments.ShardSweep(cfg, workerCounts, func(msg string) {
		fmt.Println("== " + msg)
	})
	if err != nil {
		return err
	}
	fmt.Printf("== parallel sweep done in %.1fs\n", time.Since(start).Seconds())
	// No hot-path micro-benchmarks in this mode: nil keeps the report's
	// "benchmarks" key absent (omitempty) instead of an empty literal.
	rep := perf.NewReport(nil, nil)
	rep.Parallel = points
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	for _, p := range rep.Parallel {
		fmt.Printf("   parallel %6d flows x %d workers: %6.1fs wall, %.2fM events/sec, %.4f allocs/packet",
			p.Flows, p.Workers, p.WallSeconds, p.EventsPerSec/1e6, p.AllocsPerPacket)
		if p.Workers > 1 {
			fmt.Printf(", %.2fx serial, match=%v", p.SpeedupVsSerial, p.MatchesSerial)
		}
		fmt.Println()
	}
	fmt.Printf("== parallel bench report -> %s\n", path)
	return nil
}

// runServeBench executes the BENCH_5 pipeline: pdos-serve on a loopback
// listener with a fresh cache, the sweep submitted cold (every document
// computes) and again warm (every document answered from the cache without
// touching the kernel), then the byte-identity check of the cached artifacts
// against direct kernel recomputes. The report records both walls, the
// warm/cold throughput ratio, and the cache counters.
func runServeBench(path string, workers int) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()

	cacheDir, err := os.MkdirTemp("", "pdos-serve-bench-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	srv, err := serve.New(serve.Options{CacheDir: cacheDir, Workers: workers})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 2 * time.Minute}

	docs := serveBenchDocs()
	fmt.Printf("== serve bench: %d scenarios against %s (%d workers, cache %s)\n",
		len(docs), base, workers, cacheDir)

	coldWall, cold, err := serveSweep(client, base, docs)
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	for i, st := range cold {
		if st.State != serve.StateDone || st.Cached {
			return fmt.Errorf("cold run %d: state %s cached %v (want computed done): %s", i, st.State, st.Cached, st.Error)
		}
	}
	fmt.Printf("== cold sweep: %.2fs (every document computed)\n", coldWall.Seconds())

	warmWall, warm, err := serveSweep(client, base, docs)
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	for i, st := range warm {
		if st.State != serve.StateDone || !st.Cached {
			return fmt.Errorf("warm run %d: state %s cached %v (want cache hit): %s", i, st.State, st.Cached, st.Error)
		}
	}
	fmt.Printf("== warm sweep: %.3fs (every document a cache hit)\n", warmWall.Seconds())

	fmt.Println("== verifying byte-identity of cached artifacts against direct recomputes...")
	identical, err := serveByteIdentity(client, base, docs, warm)
	if err != nil {
		return err
	}

	if warmWall <= 0 {
		warmWall = time.Microsecond
	}
	stats := srv.Cache().Stats()
	rep := perf.NewReport(nil, nil)
	rep.Serve = &perf.ServeBench{
		Scenarios:       len(docs),
		Workers:         workers,
		ColdWallSeconds: coldWall.Seconds(),
		WarmWallSeconds: warmWall.Seconds(),
		WarmSpeedup:     coldWall.Seconds() / warmWall.Seconds(),
		ByteIdentical:   identical,
		CacheHits:       stats.Hits,
		CacheMisses:     stats.Misses,
		CacheEvictions:  stats.Evictions,
		CacheDeduped:    stats.Deduped,
		CacheEntries:    stats.Entries,
		CacheBytes:      stats.Bytes,
	}
	writeErr := perf.WriteJSON(out, rep)
	closeErr := out.Close()
	if writeErr != nil {
		return writeErr
	}
	if closeErr != nil {
		return closeErr
	}
	fmt.Printf("== serve bench: %.1fx warm speedup, byte-identical=%v, %d hits / %d misses, %d entries (%.1f MiB)\n",
		rep.Serve.WarmSpeedup, identical, stats.Hits, stats.Misses, stats.Entries, float64(stats.Bytes)/(1<<20))
	fmt.Printf("== serve bench report -> %s\n", path)
	return nil
}

// serveBenchDocs returns the BENCH_5 sweep: distinct small dumbbell attack
// scenarios (different seeds and pulse gains, so different content addresses),
// each expensive enough that a cold compute dwarfs an HTTP round-trip.
func serveBenchDocs() []string {
	var docs []string
	for seed := 1; seed <= 4; seed++ {
		for _, gamma := range []float64{0.3, 0.5} {
			docs = append(docs, fmt.Sprintf(`{
  "name": "serve-bench-s%d-g%.1f",
  "topology": {"kind": "dumbbell", "flows": 10},
  "attack": {"kind": "aimd", "rateMbps": 20, "extentMs": 60, "gamma": %.1f},
  "warmupSec": 3,
  "measureSec": 6,
  "rateBinMs": 100,
  "measureJitter": true,
  "seed": %d
}`, seed, gamma, gamma, seed))
		}
	}
	return docs
}

// serveSweep submits every document concurrently with ?wait=1 and returns the
// wall time until the last response, plus the terminal statuses in doc order.
func serveSweep(client *http.Client, base string, docs []string) (time.Duration, []serve.JobStatus, error) {
	statuses := make([]serve.JobStatus, len(docs))
	errs := make([]error, len(docs))
	start := time.Now()
	var wg sync.WaitGroup
	for i, doc := range docs {
		wg.Add(1)
		go func(i int, doc string) {
			defer wg.Done()
			resp, err := client.Post(base+"/runs?wait=1", "application/json", strings.NewReader(doc))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode >= 300 {
				body, _ := io.ReadAll(resp.Body)
				errs[i] = fmt.Errorf("doc %d: HTTP %d: %s", i, resp.StatusCode, strings.TrimSpace(string(body)))
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&statuses[i]); err != nil {
				errs[i] = fmt.Errorf("doc %d: decode status: %w", i, err)
			}
		}(i, doc)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, nil, err
		}
	}
	return wall, statuses, nil
}

// serveByteIdentity recomputes every document directly through the kernel and
// compares each artifact byte for byte with what the server cached. Any
// divergence would mean the determinism premise the cache stores under is
// broken; the guard test on the committed report pins the result true.
func serveByteIdentity(client *http.Client, base string, docs []string, statuses []serve.JobStatus) (bool, error) {
	for i, doc := range docs {
		cfg, err := scenario.Load(strings.NewReader(doc))
		if err != nil {
			return false, fmt.Errorf("doc %d: %w", i, err)
		}
		direct, err := serve.ComputeArtifacts(context.Background(), cfg, nil)
		if err != nil {
			return false, fmt.Errorf("doc %d: recompute: %w", i, err)
		}
		if len(statuses[i].Artifacts) != len(direct) {
			fmt.Printf("   doc %d: artifact set mismatch (cached %d, direct %d)\n", i, len(statuses[i].Artifacts), len(direct))
			return false, nil
		}
		for _, name := range statuses[i].Artifacts {
			resp, err := client.Get(base + "/runs/" + statuses[i].ID + "/artifacts/" + name)
			if err != nil {
				return false, fmt.Errorf("doc %d: fetch %s: %w", i, name, err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return false, fmt.Errorf("doc %d: read %s: %w", i, name, err)
			}
			if resp.StatusCode != http.StatusOK {
				return false, fmt.Errorf("doc %d: fetch %s: HTTP %d", i, name, resp.StatusCode)
			}
			if !bytes.Equal(data, direct[name]) {
				fmt.Printf("   doc %d: %s differs from direct recompute (%d vs %d bytes)\n", i, name, len(data), len(direct[name]))
				return false, nil
			}
		}
	}
	return true, nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
