package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pulsedos/internal/figures"
)

func TestRunAnalyticFigures(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-scale", "quick", "-out", dir, "-figures", "fig4,prop3"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig4", "prop3"} {
		data, err := os.ReadFile(filepath.Join(dir, id+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.HasPrefix(string(data), "series,x,y\n") {
			t.Errorf("%s: missing CSV header", id)
		}
		if len(strings.Split(string(data), "\n")) < 10 {
			t.Errorf("%s: too few rows", id)
		}
	}
	// Unselected figures must not be generated.
	if _, err := os.Stat(filepath.Join(dir, "fig6.csv")); !os.IsNotExist(err) {
		t.Error("fig6 generated despite the filter")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestBuildersCoverAllFigures(t *testing.T) {
	want := map[string]bool{
		"fig1": true, "fig2": true, "fig3a": true, "fig3b": true, "fig4": true,
		"fig6": true, "fig7": true, "fig8": true, "fig9": true, "fig10": true,
		"fig12": true, "prop3": true,
	}
	for _, id := range figures.IDs() {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Errorf("figure registry missing figures: %v", want)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	err := run([]string{"-out", t.TempDir(), "-figures", "fig99"})
	if err == nil || !strings.Contains(err.Error(), `unknown figure "fig99"`) {
		t.Errorf("unknown figure id not rejected: %v", err)
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-figures", "fig4", "-html"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	page := string(data)
	if !strings.Contains(page, "<svg") || !strings.Contains(page, "fig4") {
		t.Error("report missing chart or figure id")
	}
}
