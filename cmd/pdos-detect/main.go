// Command pdos-detect validates the paper's risk-model premise: it runs the
// same PDoS attack at increasing γ and feeds the bottleneck traffic series
// to three detector archetypes (volume threshold, CUSUM change-point, DTW
// pulse matching), printing how detection evidence grows with the attack's
// average rate — the behaviour the (1-γ)^κ risk factor abstracts.
//
// Example:
//
//	pdos-detect -flows 15 -rate 35e6 -extent 75ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pulsedos"
	"pulsedos/internal/detect"
	"pulsedos/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-detect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-detect", flag.ContinueOnError)
	var (
		flows   = fs.Int("flows", 15, "number of victim TCP flows")
		rate    = fs.Float64("rate", 35e6, "pulse rate R_attack (bps)")
		extent  = fs.Duration("extent", 75*time.Millisecond, "pulse width T_extent")
		warmup  = fs.Duration("warmup", 8*time.Second, "warm-up before the attack")
		measure = fs.Duration("measure", 20*time.Second, "observation window")
		seed    = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := pulsedos.DefaultDumbbellConfig(*flows)
	cfg.Seed = *seed

	// Volume detectors alarm on arrival rates above capacity: a saturated
	// TCP aggregate already arrives at ~1.0·C, while a flooding attack (the
	// paper's γ > 1 regime) pushes arrivals well beyond it.
	threshold, err := detect.NewThreshold(cfg.BottleneckRate, 1.2, 20) // 1 s window at 50 ms bins
	if err != nil {
		return err
	}
	cusum, err := detect.NewCUSUM(100, 0.5, 8)
	if err != nil {
		return err
	}
	dtw, err := detect.NewDTW(40, 0.1, 0.6)
	if err != nil {
		return err
	}
	spectral, err := detect.NewSpectral(0.3, 0.1, 5)
	if err != nil {
		return err
	}

	points, err := experiments.DetectionStudy(experiments.DetectionStudyConfig{
		Factory: func() (pulsedos.Environment, error) {
			return pulsedos.BuildDumbbell(cfg)
		},
		AttackRate: *rate,
		Extent:     *extent,
		Gammas:     []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9},
		Warmup:     *warmup,
		Measure:    *measure,
		RateBin:    50 * time.Millisecond,
		Detectors:  []detect.Detector{threshold, cusum, dtw, spectral},
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-8s %-22s %-22s %-22s %-22s\n", "gamma", "threshold", "cusum", "dtw", "spectral")
	for _, p := range points {
		fmt.Printf("%-8.2f %-22s %-22s %-22s %-22s\n", p.Gamma,
			verdict(p, "threshold"), verdict(p, "cusum"), verdict(p, "dtw"), verdict(p, "spectral"))
	}
	// Flood reference: the same pulse rate sent continuously is the
	// traditional attack (γ = R_attack/R_bottle > 1) every volume detector
	// is built for.
	floodEnv, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}
	flood := pulsedos.FloodTrain(*rate, *measure+2*time.Second)
	res, err := pulsedos.Run(floodEnv, pulsedos.RunOptions{
		Warmup:  *warmup,
		Measure: *measure,
		Train:   &flood,
		RateBin: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	floodPt := pulsedos.DetectionPoint{
		Gamma:  *rate / cfg.BottleneckRate,
		Scores: map[string]float64{},
		Alarms: map[string]bool{},
	}
	for _, d := range []detect.Detector{threshold, cusum, dtw, spectral} {
		v := d.Detect(res.Rate.Bytes(), 0.05)
		floodPt.Scores[d.Name()] = v.Score
		floodPt.Alarms[d.Name()] = v.Attack
	}
	fmt.Printf("%-8s %-22s %-22s %-22s %-22s  <- flood baseline\n",
		fmt.Sprintf("%.2f", floodPt.Gamma),
		verdict(floodPt, "threshold"), verdict(floodPt, "cusum"),
		verdict(floodPt, "dtw"), verdict(floodPt, "spectral"))

	fmt.Println("\nexpectation: the volume threshold trips only for the flood (gamma > 1);")
	fmt.Println("a tuned PDoS attack stays below it, while shape/periodicity detectors")
	fmt.Println("(dtw, spectral) are the ones that see mid-gamma pulse trains.")
	return nil
}

func verdict(p pulsedos.DetectionPoint, name string) string {
	mark := " "
	if p.Alarms[name] {
		mark = "ALARM"
	}
	return fmt.Sprintf("score=%.2f %s", p.Scores[name], mark)
}
