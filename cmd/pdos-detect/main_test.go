package main

import "testing"

func TestRunDetectionTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation study")
	}
	err := run([]string{"-flows", "3", "-warmup", "2s", "-measure", "3s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
