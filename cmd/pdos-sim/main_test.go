package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDumbbellScenario(t *testing.T) {
	err := run([]string{
		"-flows", "5", "-warmup", "3s", "-measure", "4s", "-gamma", "0.5",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTestbedScenario(t *testing.T) {
	err := run([]string{
		"-topology", "testbed", "-flows", "4",
		"-rate", "20e6", "-extent", "150ms",
		"-warmup", "3s", "-measure", "4s", "-gamma", "0.3",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-topology", "ring"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-rate", "10e6", "-gamma", "0.9", "-measure", "2s", "-warmup", "1s"}); err == nil {
		t.Error("unreachable gamma accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunScenarioConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scn.json")
	err := os.WriteFile(path, []byte(`{
		"name": "test",
		"topology": {"kind": "dumbbell", "flows": 3},
		"attack": {"kind": "aimd", "rateMbps": 35, "extentMs": 75, "gamma": 0.5},
		"warmupSec": 2, "measureSec": 3
	}`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioConfigErrors(t *testing.T) {
	if err := run([]string{"-config", "/nonexistent.json"}); err == nil {
		t.Error("missing config accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"topology": {"kind": "star"}, "measureSec": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}); err == nil {
		t.Error("invalid config accepted")
	}
}
