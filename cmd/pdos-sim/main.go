// Command pdos-sim runs a single PDoS attack scenario on one of the
// evaluation topologies — the Fig. 5 ns-2 dumbbell, the Fig. 11 Dummynet
// test-bed, the parking-lot multi-bottleneck chain, or the dumbbell with
// cross-traffic — and reports throughput degradation, attack gain, and TCP
// state statistics.
//
// Example:
//
//	pdos-sim -topology dumbbell -flows 25 -rate 35e6 -extent 75ms -gamma 0.5
//	pdos-sim -topology parkinglot -workers 4
//	pdos-sim -config scenario.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pulsedos"
	"pulsedos/internal/experiments"
	"pulsedos/internal/scenario"
	"pulsedos/internal/topo"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-sim", flag.ContinueOnError)
	var (
		config   = fs.String("config", "", "JSON scenario file (overrides the other flags)")
		topology = fs.String("topology", "dumbbell", "dumbbell (ns-2 Fig. 5), testbed (Fig. 11), parkinglot, or crosstraffic")
		flows    = fs.Int("flows", 25, "number of victim TCP flows")
		rate     = fs.Float64("rate", 35e6, "pulse rate R_attack (bps)")
		extent   = fs.Duration("extent", 75*time.Millisecond, "pulse width T_extent")
		gamma    = fs.Float64("gamma", 0.5, "target normalized average attack rate")
		kappa    = fs.Float64("kappa", 1, "risk preference kappa")
		warmup   = fs.Duration("warmup", 10*time.Second, "warm-up before measurement")
		measure  = fs.Duration("measure", 30*time.Second, "measurement window")
		seed     = fs.Uint64("seed", 1, "simulation seed")
		workers  = fs.Int("workers", 1, "shard the topology across N cores (results identical to -workers 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *config != "" {
		return runScenario(*config)
	}

	factory, err := environmentFactory(*topology, *flows, *seed, *workers)
	if err != nil {
		return err
	}

	// Both runs own a private kernel and environment, so the baseline and the
	// attacked scenario simulate concurrently with identical results to a
	// sequential execution.
	baseEnv, err := factory()
	if err != nil {
		return err
	}
	params := baseEnv.ModelParams()

	period := pulsedos.PeriodForGamma(*gamma, *rate, *extent, params.Bottleneck)
	if period < *extent {
		return fmt.Errorf("gamma %.2f unreachable at %.0f Mbps pulses: would need period %v < extent %v",
			*gamma, *rate/1e6, period, *extent)
	}
	pulses := int(*measure/period) + 2
	train, err := pulsedos.AIMDTrain(*extent, *rate, period, pulses)
	if err != nil {
		return err
	}
	env, err := factory()
	if err != nil {
		return err
	}

	var base, res *pulsedos.RunResult
	runs := []func() error{
		func() (err error) {
			base, err = pulsedos.Run(baseEnv, pulsedos.RunOptions{Warmup: *warmup, Measure: *measure})
			return err
		},
		func() (err error) {
			res, err = pulsedos.Run(env, pulsedos.RunOptions{Warmup: *warmup, Measure: *measure, Train: &train})
			return err
		},
	}
	runErr := experiments.RunTasks(2, len(runs), func(i int) error { return runs[i]() })
	closeEnv(baseEnv)
	closeEnv(env)
	if runErr != nil {
		return runErr
	}

	deg := 1 - float64(res.Delivered)/float64(base.Delivered)
	if deg < 0 {
		deg = 0
	}
	cPsi := params.CPsi(extent.Seconds(), *rate)
	fmt.Printf("topology                : %s (%d flows, bottleneck %.0f Mbps)\n",
		*topology, *flows, params.Bottleneck/1e6)
	fmt.Printf("attack                  : R=%.0f Mbps, Textent=%v, T_AIMD=%v, gamma=%.3f, %d pulses\n",
		*rate/1e6, *extent, period.Round(time.Millisecond), *gamma, pulses)
	fmt.Printf("baseline throughput     : %.3f Mbps\n", mbps(base.Delivered, *measure))
	fmt.Printf("attacked throughput     : %.3f Mbps\n", mbps(res.Delivered, *measure))
	fmt.Printf("measured degradation    : %.4f   (analytic %.4f)\n",
		deg, pulsedos.Degradation(cPsi, *gamma))
	fmt.Printf("measured attack gain    : %.4f   (analytic %.4f)\n",
		deg*pulsedos.RiskFactor(*gamma, *kappa), pulsedos.Gain(cPsi, *gamma, *kappa))
	fmt.Printf("victim TO / FR entries  : %d / %d  (baseline %d / %d)\n",
		res.Timeouts, res.FastRecoveries, base.Timeouts, base.FastRecoveries)
	fmt.Printf("attack packets sent     : %d (%.1f MB)\n",
		res.AttackStats.PacketsSent, float64(res.AttackStats.BytesSent)/1e6)
	return nil
}

// runScenario executes a JSON-defined scenario, with a matching no-attack
// baseline for the degradation comparison.
func runScenario(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cfg, err := scenario.Load(f)
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}

	baselineCfg := cfg
	baselineCfg.Attack = nil
	base, err := baselineCfg.Run()
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	res, err := cfg.Run()
	if err != nil {
		return err
	}
	span := time.Duration(cfg.MeasureSec * float64(time.Second))
	fmt.Printf("scenario                : %s (%s, %d-ish flows)\n", cfg.Name, cfg.Topology.Kind, cfg.Topology.Flows)
	fmt.Printf("baseline throughput     : %.3f Mbps\n", mbps(base.Delivered, span))
	fmt.Printf("attacked throughput     : %.3f Mbps\n", mbps(res.Delivered, span))
	deg := 0.0
	if base.Delivered > 0 {
		deg = 1 - float64(res.Delivered)/float64(base.Delivered)
		if deg < 0 {
			deg = 0
		}
	}
	fmt.Printf("measured degradation    : %.4f\n", deg)
	fmt.Printf("victim TO / FR entries  : %d / %d  (baseline %d / %d)\n",
		res.Timeouts, res.FastRecoveries, base.Timeouts, base.FastRecoveries)
	fmt.Printf("attack packets sent     : %d\n", res.AttackStats.PacketsSent)
	if res.Jitter != nil {
		fmt.Printf("mean victim jitter      : %.4f s\n", res.Jitter.Mean())
	}
	return nil
}

// environmentFactory builds identically configured environments on demand.
// Every topology resolves to a declarative graph and builds through
// topo.Build; workers > 1 shards it across the conservative parallel engine
// with results bit-identical to the serial build at any worker count.
func environmentFactory(topology string, flows int, seed uint64, workers int) (func() (pulsedos.Environment, error), error) {
	var gen func() topo.Graph
	switch topology {
	case "dumbbell":
		gen = func() topo.Graph {
			cfg := topo.DefaultDumbbellConfig(flows)
			cfg.Seed = seed
			return topo.Dumbbell(cfg)
		}
	case "testbed":
		gen = func() topo.Graph {
			cfg := topo.DefaultTestbedConfig(flows)
			cfg.Seed = seed
			return topo.Testbed(cfg)
		}
	case "parkinglot":
		gen = func() topo.Graph {
			cfg := topo.DefaultParkingLotConfig()
			cfg.LongFlows = flows
			cfg.Seed = seed
			return topo.ParkingLot(cfg)
		}
	case "crosstraffic":
		gen = func() topo.Graph {
			cfg := topo.DefaultCrossTrafficConfig()
			cfg.Flows = flows
			cfg.Seed = seed
			return topo.CrossTraffic(cfg)
		}
	default:
		return nil, fmt.Errorf("unknown topology %q (want dumbbell, testbed, parkinglot, or crosstraffic)", topology)
	}
	return func() (pulsedos.Environment, error) {
		return topo.Build(gen(), topo.Options{Workers: workers})
	}, nil
}

// closeEnv joins any shard goroutines an environment may own.
func closeEnv(env pulsedos.Environment) {
	if c, ok := env.(interface{ Close() }); ok {
		c.Close()
	}
}

func mbps(bytes uint64, span time.Duration) float64 {
	return float64(bytes) * 8 / span.Seconds() / 1e6
}
