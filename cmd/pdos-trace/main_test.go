package main

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func TestRunEmitsTraceLines(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-flows", "3", "-warmup", "2s", "-measure", "1s"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		line := sc.Text()
		lines++
		switch line[0] {
		case '+', '-', 'd':
		default:
			t.Fatalf("bad trace line: %q", line)
		}
		if !strings.Contains(line, "bottleneck-fwd") {
			t.Fatalf("line missing link name: %q", line)
		}
	}
	if lines < 100 {
		t.Errorf("trace emitted only %d lines", lines)
	}
	if !strings.Contains(errOut.String(), "victim bytes delivered") {
		t.Errorf("summary missing: %q", errOut.String())
	}
}

func TestRunUnreachableGamma(t *testing.T) {
	var out, errOut bytes.Buffer
	// 16 Mbps pulses cannot reach gamma 0.99 over a 15 Mbps bottleneck.
	err := run([]string{"-rate", "10e6", "-gamma", "0.9", "-measure", "1s"}, &out, &errOut)
	if err == nil {
		t.Error("unreachable gamma accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-flows", "nope"}, nil, nil); err == nil {
		t.Error("bad flag accepted")
	}
}
