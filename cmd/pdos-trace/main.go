// Command pdos-trace runs one attacked scenario and emits an ns-2-style
// packet-event trace of the bottleneck link ('+' enqueue, 'd' drop, '-'
// dequeue), for downstream analysis with the same tooling people used on
// ns-2 trace files.
//
// Example:
//
//	pdos-trace -flows 5 -rate 35e6 -extent 75ms -gamma 0.5 -measure 5s > bottleneck.tr
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pulsedos"
	"pulsedos/internal/experiments"
	"pulsedos/internal/sim"
	"pulsedos/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("pdos-trace", flag.ContinueOnError)
	var (
		flows   = fs.Int("flows", 5, "number of victim TCP flows")
		rate    = fs.Float64("rate", 35e6, "pulse rate R_attack (bps)")
		extent  = fs.Duration("extent", 75*time.Millisecond, "pulse width T_extent")
		gamma   = fs.Float64("gamma", 0.5, "target normalized average attack rate")
		warmup  = fs.Duration("warmup", 5*time.Second, "warm-up before the attack and trace")
		measure = fs.Duration("measure", 5*time.Second, "traced window")
		seed    = fs.Uint64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := pulsedos.DefaultDumbbellConfig(*flows)
	cfg.Seed = *seed
	env, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}

	out := bufio.NewWriter(stdout)
	defer out.Flush()
	tr := trace.NewEventTrace("bottleneck-fwd", out, false)
	tr.SetStart(sim.FromDuration(*warmup))
	env.Target().AddTap(tr)

	period := pulsedos.PeriodForGamma(*gamma, *rate, *extent, cfg.BottleneckRate)
	if period < *extent {
		return fmt.Errorf("gamma %.2f unreachable at %.0f Mbps pulses", *gamma, *rate/1e6)
	}
	train, err := pulsedos.AIMDTrain(*extent, *rate, period, experiments.PulsesFor(*measure, period))
	if err != nil {
		return err
	}
	res, err := pulsedos.Run(env, pulsedos.RunOptions{Warmup: *warmup, Measure: *measure, Train: &train})
	if err != nil {
		return err
	}
	if tr.WriteErrors() > 0 {
		return fmt.Errorf("%d trace lines failed to write", tr.WriteErrors())
	}
	fmt.Fprintf(stderr, "pdos-trace: %d victim bytes delivered, %d drops at the bottleneck\n",
		res.Delivered, res.Drops.Total)
	return nil
}
