// Command pdos-opt computes optimal PDoS attack parameters from the paper's
// closed forms (Propositions 3–4): given a victim population and a risk
// preference κ, it reports γ*, μ*, the attack period T_AIMD, and the
// predicted gain — the attacker's planning step of §3.
//
// Example:
//
//	pdos-opt -bottleneck 15e6 -rate 35e6 -extent 75ms -kappa 1 \
//	         -flows 25 -rtt-min 20ms -rtt-max 460ms
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-opt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pdos-opt", flag.ContinueOnError)
	var (
		bottleneck = fs.Float64("bottleneck", 15e6, "bottleneck capacity R_bottle (bps)")
		rate       = fs.Float64("rate", 35e6, "pulse rate R_attack (bps)")
		extent     = fs.Duration("extent", 75*time.Millisecond, "pulse width T_extent")
		kappa      = fs.Float64("kappa", 1, "risk preference kappa (>1 averse, 1 neutral, <1 loving)")
		flows      = fs.Int("flows", 25, "number of victim TCP flows")
		rttMin     = fs.Duration("rtt-min", 20*time.Millisecond, "smallest victim RTT")
		rttMax     = fs.Duration("rtt-max", 460*time.Millisecond, "largest victim RTT")
		packet     = fs.Float64("packet", 1040, "victim packet size S_packet (bytes)")
		ackRatio   = fs.Float64("d", 1, "delayed-ACK ratio d")
		aimdA      = fs.Float64("a", 1, "AIMD additive increase a")
		aimdB      = fs.Float64("b", 0.5, "AIMD multiplicative decrease b")
		curve      = fs.Bool("curve", false, "also print the analytic gain curve as CSV (gamma,degradation,risk,gain)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *flows < 1 {
		return fmt.Errorf("flows must be >= 1, got %d", *flows)
	}
	rtts := make([]float64, *flows)
	for i := range rtts {
		rtt := *rttMin
		if *flows > 1 {
			rtt += time.Duration(int64(*rttMax-*rttMin) * int64(i) / int64(*flows-1))
		}
		rtts[i] = rtt.Seconds()
	}
	params := pulsedos.ModelParams{
		AIMD:       pulsedos.AIMD{A: *aimdA, B: *aimdB},
		AckRatio:   *ackRatio,
		PacketSize: *packet,
		Bottleneck: *bottleneck,
		RTTs:       rtts,
	}
	plan, err := pulsedos.PlanAttack(params, extent.Seconds(), *rate, *kappa)
	if err != nil {
		return err
	}
	fmt.Printf("attacker profile        : %s (kappa = %g)\n", pulsedos.ClassifyRisk(*kappa), *kappa)
	fmt.Printf("victim constant C_victim: %.6f\n", params.CVictim())
	fmt.Printf("attack constant C_Psi   : %.6f\n", plan.CPsi)
	fmt.Printf("optimal gamma*          : %.4f\n", plan.Gamma)
	fmt.Printf("optimal mu* (Tspace/Text): %.4f\n", plan.Mu)
	fmt.Printf("optimal period T_AIMD   : %.4f s  (T_extent = %v, T_space = %.4f s)\n",
		plan.Period, *extent, plan.Period-extent.Seconds())
	fmt.Printf("predicted degradation   : %.4f\n", pulsedos.Degradation(plan.CPsi, plan.Gamma))
	fmt.Printf("predicted attack gain   : %.4f\n", plan.Gain)
	fmt.Printf("average attack rate     : %.2f Mbps (%.1f%% of bottleneck)\n",
		plan.Gamma**bottleneck/1e6, 100*plan.Gamma)
	if *curve {
		fmt.Println("\ngamma,degradation,risk,gain")
		for g := 0.01; g < 1; g += 0.01 {
			fmt.Printf("%.2f,%.4f,%.4f,%.4f\n",
				g,
				pulsedos.Degradation(plan.CPsi, g),
				pulsedos.RiskFactor(g, *kappa),
				pulsedos.Gain(plan.CPsi, g, *kappa))
		}
	}
	return nil
}
