package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunRiskProfiles(t *testing.T) {
	for _, kappa := range []string{"0.3", "1", "5"} {
		if err := run([]string{"-kappa", kappa, "-flows", "5"}); err != nil {
			t.Errorf("kappa %s: %v", kappa, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-flows", "0"}); err == nil {
		t.Error("zero flows accepted")
	}
	if err := run([]string{"-kappa", "0"}); err == nil {
		t.Error("zero kappa accepted")
	}
	// A pulse rate below the bottleneck cannot realize the optimum for a
	// strongly risk-loving attacker.
	if err := run([]string{"-rate", "1e6", "-kappa", "0.001"}); err == nil {
		t.Error("unreachable plan accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunCurve(t *testing.T) {
	if err := run([]string{"-flows", "5", "-curve"}); err != nil {
		t.Fatal(err)
	}
}
