// Command pdos-lint runs the repository's static-analysis suite
// (internal/lint): the flow-sensitive pool-ownership analyzer plus the
// determinism, hot-path-hygiene, float-equality, virtual-time, shard-
// isolation, counter-conservation, and directive-vocabulary analyzers that
// machine-check the contracts the simulator's reproducibility and
// 0 allocs/packet arguments rest on. It is stdlib-only — go/parser +
// go/types with a source-mode importer — so `make lint` needs no tool
// downloads.
//
// Usage:
//
//	pdos-lint [-root dir] [-json] [package-dir ...]
//
// With no package arguments (or the conventional "./..."), every buildable
// package in the module is analyzed. Findings print as
// file:line:col: [analyzer] message; -json instead emits a deterministic
// (file/line/col/analyzer-sorted) JSON array of findings on stdout.
//
// Exit codes are a pinned contract (CI and the run cache depend on them):
//
//	0 — analysis ran, no findings
//	1 — analysis ran, at least one finding
//	2 — analysis could not run (bad flags, unreadable module, type errors)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pulsedos/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the stable wire shape of one finding.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// run is the whole tool behind the exit-code contract: 0 clean, 1 findings,
// 2 load/usage error. It never calls os.Exit itself, so tests can drive it
// in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdos-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	root := fs.String("root", ".", "module root directory (holds go.mod)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	diags, npkgs, err := analyze(*root, fs.Args())
	if err != nil {
		fmt.Fprintln(stderr, "pdos-lint:", err)
		return 2
	}

	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "pdos-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	fmt.Fprintf(stderr, "pdos-lint: %d package(s), %d finding(s)\n", npkgs, len(diags))
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// analyze loads the selected packages and runs the suite, returning the
// sorted findings (lint.Run sorts by file/line/col/analyzer).
func analyze(root string, args []string) ([]lint.Diagnostic, int, error) {
	l, err := lint.NewLoader(root)
	if err != nil {
		return nil, 0, err
	}
	paths := l.Paths()
	if want := selectPaths(l, args); want != nil {
		paths = want
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, 0, err
		}
		pkgs = append(pkgs, pkg)
	}
	return lint.Run(lint.Default(), pkgs), len(pkgs), nil
}

// selectPaths maps directory arguments to import paths; "./..." (or no
// arguments) selects everything.
func selectPaths(l *lint.Loader, args []string) []string {
	var out []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			continue
		}
		rel, err := filepath.Rel(l.Root, abs)
		if err != nil {
			continue
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		if strings.HasSuffix(a, "/...") {
			for _, p := range l.Paths() {
				if p == ip || strings.HasPrefix(p, ip+"/") {
					out = append(out, p)
				}
			}
		} else {
			out = append(out, ip)
		}
	}
	return out
}
