// Command pdos-lint runs the repository's static-analysis suite
// (internal/lint): the determinism, pool-ownership, hot-path-hygiene, and
// float-equality analyzers that machine-check the contracts the simulator's
// reproducibility and 0 allocs/packet arguments rest on. It is stdlib-only —
// go/parser + go/types with a source-mode importer — so `make lint` needs no
// tool downloads.
//
// Usage:
//
//	pdos-lint [-root dir] [package-dir ...]
//
// With no package arguments (or the conventional "./..."), every buildable
// package in the module is analyzed. Findings print as
// file:line:col: [analyzer] message, and a non-empty finding set exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pulsedos/internal/lint"
)

func main() {
	root := flag.String("root", ".", "module root directory (holds go.mod)")
	flag.Parse()

	if err := run(*root, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pdos-lint:", err)
		os.Exit(2)
	}
}

func run(root string, args []string) error {
	l, err := lint.NewLoader(root)
	if err != nil {
		return err
	}
	paths := l.Paths()
	if want := selectPaths(l, args); want != nil {
		paths = want
	}
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}
	diags := lint.Run(lint.Default(), pkgs)
	for _, d := range diags {
		fmt.Println(d.String())
	}
	fmt.Fprintf(os.Stderr, "pdos-lint: %d package(s), %d finding(s)\n", len(pkgs), len(diags))
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// selectPaths maps directory arguments to import paths; "./..." (or no
// arguments) selects everything.
func selectPaths(l *lint.Loader, args []string) []string {
	var out []string
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			return nil
		}
		abs, err := filepath.Abs(strings.TrimSuffix(a, "/..."))
		if err != nil {
			continue
		}
		rel, err := filepath.Rel(l.Root, abs)
		if err != nil {
			continue
		}
		ip := l.Module
		if rel != "." {
			ip = l.Module + "/" + filepath.ToSlash(rel)
		}
		if strings.HasSuffix(a, "/...") {
			for _, p := range l.Paths() {
				if p == ip || strings.HasPrefix(p, ip+"/") {
					out = append(out, p)
				}
			}
		} else {
			out = append(out, ip)
		}
	}
	return out
}
