package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// writeModule lays out a throwaway module for run() to analyze. files maps
// module-relative paths to contents; a go.mod is written unless the map
// already has one (or omitGoMod is used via a nil map entry).
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const cleanSrc = `package clean

// Sum is ordinary code no analyzer objects to.
func Sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
`

// dirtySrc trips the float-equality analyzer: Default() scopes floateq to
// the internal/model package of whatever module is loaded.
const dirtySrc = `package model

// Equal compares floats exactly — the seeded violation.
func Equal(a, b float64) bool { return a == b }
`

// TestExitCodeContract pins the 0/1/2 contract CI and the run cache depend
// on: clean tree 0, findings 1, unloadable module or bad usage 2 — and run()
// must return, never os.Exit, so each case is observable in-process.
func TestExitCodeContract(t *testing.T) {
	cases := []struct {
		name  string
		files map[string]string // nil → point at an empty dir (no go.mod)
		args  []string
		want  int
	}{
		{
			name:  "clean module exits 0",
			files: map[string]string{"go.mod": "module pulsedos\n\ngo 1.22\n", "clean/clean.go": cleanSrc},
			want:  0,
		},
		{
			name:  "findings exit 1",
			files: map[string]string{"go.mod": "module pulsedos\n\ngo 1.22\n", "internal/model/model.go": dirtySrc},
			want:  1,
		},
		{
			name: "missing go.mod exits 2",
			want: 2,
		},
		{
			name:  "type error exits 2",
			files: map[string]string{"go.mod": "module pulsedos\n\ngo 1.22\n", "bad/bad.go": "package bad\n\nfunc f() int { return undefinedName }\n"},
			want:  2,
		},
		{
			name:  "bad flag exits 2",
			files: map[string]string{"go.mod": "module pulsedos\n\ngo 1.22\n", "clean/clean.go": cleanSrc},
			args:  []string{"-definitely-not-a-flag"},
			want:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := writeModule(t, tc.files)
			args := append([]string{"-root", root}, tc.args...)
			var stdout, stderr bytes.Buffer
			if got := run(args, &stdout, &stderr); got != tc.want {
				t.Errorf("exit code = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestJSONOutput pins the -json wire shape: a JSON array (never null) of
// {analyzer, file, line, col, message}, sorted by file/line/col/analyzer.
func TestJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                  "module pulsedos\n\ngo 1.22\n",
		"internal/model/model.go": dirtySrc,
	})
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-root", root, "-json"}, &stdout, &stderr); got != 1 {
		t.Fatalf("exit code = %d, want 1; stderr:\n%s", got, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "floateq" || filepath.Base(d.File) != "model.go" || d.Line == 0 || d.Col == 0 || d.Message == "" {
		t.Errorf("unexpected finding shape: %+v", d)
	}

	// A clean tree must emit [] — an empty array, not null — so downstream
	// jq/artifact consumers never special-case the happy path.
	root = writeModule(t, map[string]string{
		"go.mod":         "module pulsedos\n\ngo 1.22\n",
		"clean/clean.go": cleanSrc,
	})
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-root", root, "-json"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit code = %d, want 0; stderr:\n%s", got, stderr.String())
	}
	trimmed := bytes.TrimSpace(stdout.Bytes())
	if string(trimmed) != "[]" {
		t.Errorf("clean -json output = %q, want []", trimmed)
	}
}
