package pulsedos

import (
	"runtime"
	"testing"
	"time"

	"pulsedos/internal/experiments"
	"pulsedos/internal/sim"
)

// TestTCPFlowAllocRegression guards the per-packet allocation budget of a
// full TCP flow through the dumbbell. Before the kernel/packet overhaul the
// simulator allocated ~6 heap objects per forwarded packet (packet literal,
// two events, two timers, closures); with the event free list and packet
// pool the steady state is well under one.
func TestTCPFlowAllocRegression(t *testing.T) {
	cfg := experiments.DefaultDumbbellConfig(1)
	cfg.RTTMin = 100 * time.Millisecond
	cfg.RTTMax = 100 * time.Millisecond
	d, err := experiments.BuildDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StartFlows(); err != nil {
		t.Fatal(err)
	}
	// Warm up: slow start, pool and free-list growth.
	if err := d.Kernel.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	arrivals0 := d.Bottle.Stats().Arrivals

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := d.Kernel.RunFor(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	packets := d.Bottle.Stats().Arrivals - arrivals0
	if packets == 0 {
		t.Fatal("no packets crossed the bottleneck")
	}
	allocs := float64(m1.Mallocs - m0.Mallocs)
	perPacket := allocs / float64(packets)
	t.Logf("%d packets, %.0f allocs, %.3f allocs/packet", packets, allocs, perPacket)
	// The budget is zero: the wheel kernel's event free list, the packet
	// pool, the FlowTable's flat per-flow state, and the receiver's ring
	// bitset leave nothing to allocate per packet. The epsilon only absorbs
	// incidental runtime allocations (GC bookkeeping) outside the model.
	if perPacket > 0.01 {
		t.Errorf("steady-state TCP flow allocates %.3f objects/packet, want 0", perPacket)
	}
}

// TestManyFlowAllocRegression guards the same zero budget at population
// scale: 200 flows through one pulsed bottleneck must stay allocation-free
// per packet once established — the property that lets the scale sweep run
// 10k+ flows without GC pressure.
func TestManyFlowAllocRegression(t *testing.T) {
	cfg := experiments.DefaultDumbbellConfig(200)
	d, err := experiments.BuildDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StartFlows(); err != nil {
		t.Fatal(err)
	}
	if err := d.Kernel.RunFor(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	arrivals0 := d.Bottle.Stats().Arrivals

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := d.Kernel.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	packets := d.Bottle.Stats().Arrivals - arrivals0
	if packets == 0 {
		t.Fatal("no packets crossed the bottleneck")
	}
	perPacket := float64(m1.Mallocs-m0.Mallocs) / float64(packets)
	t.Logf("%d packets, %.3f allocs/packet", packets, perPacket)
	if perPacket > 0.01 {
		t.Errorf("steady-state 200-flow dumbbell allocates %.3f objects/packet, want 0", perPacket)
	}
}

// TestMillionFlowAllocRegression guards the zero budget at the BENCH_4
// headline scale: a million flows total — a packet-accurate foreground of
// 500 beside a fluid-aggregated background of 999,500 — through one
// bottleneck. The fluid tier is O(1) in both memory and events (one
// aggregate ODE per group, ticked at RTT/2), so the steady state must stay
// allocation-free per forwarded packet exactly like the small populations:
// the macroflow tick reads link counters and credits a byte account, and
// neither path touches the heap.
func TestMillionFlowAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow steady-state run in -short mode")
	}
	const (
		packetFlows = 500
		totalFlows  = 1_000_000
	)
	cfg := experiments.DefaultDumbbellConfig(packetFlows)
	cfg.FluidBackgroundFlows = totalFlows - packetFlows
	// Match the scale sweep's regime: 1 Mbps of carved residual per packet
	// flow (rate x 500/1e6 per flow) and a 10-packets-per-flow trunk buffer,
	// so queue high-water marks settle inside the warm-up instead of creeping
	// through the measurement window.
	cfg.BottleneckRate = 1e6 * totalFlows
	cfg.QueueLimit = 10 * packetFlows
	d, err := experiments.BuildDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.StartFlows(); err != nil {
		t.Fatal(err)
	}
	if err := d.Kernel.RunFor(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	arrivals0 := d.Bottle.Stats().Arrivals

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := d.Kernel.RunFor(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	packets := d.Bottle.Stats().Arrivals - arrivals0
	if packets == 0 {
		t.Fatal("no packets crossed the bottleneck")
	}
	perPacket := float64(m1.Mallocs-m0.Mallocs) / float64(packets)
	t.Logf("%d packets, %.3f allocs/packet", packets, perPacket)
	if perPacket > 0.01 {
		t.Errorf("steady-state million-flow dumbbell allocates %.3f objects/packet, want 0", perPacket)
	}
	if got := d.Goodput().Flow(packetFlows); got == 0 {
		t.Error("fluid background delivered nothing — the million-flow claim is vacuous")
	}
}

// TestShardedAllocRegression guards the zero budget across the parallel
// engine's 4-worker path: boundary crossings hand packets between shard-local
// pools (release at the source, pool get at the destination), outboxes and
// the merge scratch are reused across barriers, and the sort comparator is a
// top-level function — so the sharded steady state must allocate nothing per
// packet, same as serial.
func TestShardedAllocRegression(t *testing.T) {
	cfg := experiments.DefaultDumbbellConfig(100)
	sd, err := experiments.BuildShardedDumbbell(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sd.Close()
	if err := sd.StartFlows(); err != nil {
		t.Fatal(err)
	}
	warm := sim.FromDuration(15 * time.Second)
	if err := sd.RunUntil(warm); err != nil {
		t.Fatal(err)
	}
	arrivals0 := sd.BottleStats().Arrivals

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := sd.RunUntil(warm + sim.FromDuration(5*time.Second)); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)

	packets := sd.BottleStats().Arrivals - arrivals0
	if packets == 0 {
		t.Fatal("no packets crossed the bottleneck")
	}
	perPacket := float64(m1.Mallocs-m0.Mallocs) / float64(packets)
	t.Logf("%d packets, %.3f allocs/packet", packets, perPacket)
	if perPacket > 0.01 {
		t.Errorf("steady-state 4-worker sharded dumbbell allocates %.3f objects/packet, want 0", perPacket)
	}
}
