// Shrew: contrast the AIMD-based PDoS attack with the timeout-based shrew
// attack (§4.1.3, Fig. 10). Both replay the same pulse shape, but the shrew
// tunes its period to the victims' minimum RTO so that every retransmission
// after a timeout collides with the next pulse, pinning senders in the TO
// state — and beating the AIMD analysis's prediction at those resonant
// periods.
//
// Run with: go run ./examples/shrew
package main

import (
	"fmt"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "shrew:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		flows   = 15
		rate    = 50e6
		extent  = 50 * time.Millisecond
		minRTO  = time.Second // the ns-2 stack's RTO_min
		warmup  = 8 * time.Second
		measure = 20 * time.Second
	)
	cfg := pulsedos.DefaultDumbbellConfig(flows)

	baseEnv, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}
	base, err := pulsedos.Run(baseEnv, pulsedos.RunOptions{Warmup: warmup, Measure: measure})
	if err != nil {
		return err
	}
	fmt.Printf("baseline: %.2f Mbps across %d flows\n\n", mbps(base.Delivered, measure), flows)
	fmt.Printf("%-26s %-10s %-8s %-12s %-10s %-8s\n",
		"attack", "period", "gamma", "throughput", "degrade", "TO/FR")

	type scenario struct {
		name  string
		train pulsedos.Train
	}
	var scenarios []scenario

	// Shrew harmonics: period = minRTO/n.
	for n := 1; n <= 3; n++ {
		train, err := pulsedos.ShrewTrain(extent, rate, minRTO, n, int(measure/(minRTO/time.Duration(n)))+2)
		if err != nil {
			return err
		}
		scenarios = append(scenarios, scenario{fmt.Sprintf("shrew minRTO/%d", n), train})
	}
	// Non-resonant AIMD attack with the same γ as the minRTO/1 shrew.
	gamma := rate * extent.Seconds() / (cfg.BottleneckRate * minRTO.Seconds())
	offPeriod := 700 * time.Millisecond // off-resonance on purpose
	offGamma := rate * extent.Seconds() / (cfg.BottleneckRate * offPeriod.Seconds())
	aimdTrain, err := pulsedos.AIMDTrain(extent, rate, offPeriod, int(measure/offPeriod)+2)
	if err != nil {
		return err
	}
	scenarios = append(scenarios, scenario{"AIMD off-resonance", aimdTrain})
	// Flooding baseline at the same average rate as the shrew.
	flood := pulsedos.FloodTrain(gamma*cfg.BottleneckRate, measure+warmup)
	scenarios = append(scenarios, scenario{"flood (same avg rate)", flood})

	for _, sc := range scenarios {
		env, err := pulsedos.BuildDumbbell(cfg)
		if err != nil {
			return err
		}
		train := sc.train
		res, err := pulsedos.Run(env, pulsedos.RunOptions{Warmup: warmup, Measure: measure, Train: &train})
		if err != nil {
			return err
		}
		deg := 1 - float64(res.Delivered)/float64(base.Delivered)
		var period, g float64
		if len(train.Pulses) > 0 {
			period = train.Pulses[0].Period().Seconds()
			g = train.MeanGamma(cfg.BottleneckRate)
		}
		fmt.Printf("%-26s %-10.3f %-8.3f %-12.2f %-10.3f %d/%d\n",
			sc.name, period, g, mbps(res.Delivered, measure), deg,
			res.Timeouts, res.FastRecoveries)
	}
	fmt.Printf("\n(resonant shrew periods force timeouts: at the same average rate gamma=%.2f\n", gamma)
	fmt.Printf(" the flood does far less damage than the shrew; the off-resonance AIMD attack\n")
	fmt.Printf(" at gamma=%.2f relies on FR-state window cuts instead of TO-state starvation)\n", offGamma)
	return nil
}

func mbps(bytes uint64, span time.Duration) float64 {
	return float64(bytes) * 8 / span.Seconds() / 1e6
}
