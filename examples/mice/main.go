// Mice: measure what end users feel under a PDoS attack. Long-lived
// "elephant" flows share the bottleneck with short web-like "mice"
// transfers; the attack is tuned analytically for a risk-neutral attacker,
// and the damage is read off the mice's flow-completion times (FCT) — the
// workload dimension the shrew literature (mice vs. elephants) made central.
//
// Run with: go run ./examples/mice
package main

import (
	"fmt"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mice:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := pulsedos.DefaultMiceConfig()

	// Baseline: no attack.
	base, err := pulsedos.MiceStudy(cfg)
	if err != nil {
		return err
	}

	// Tuned attack: 75 ms pulses at 40 Mbps with the risk-neutral optimal
	// period for the elephants' population.
	env, err := pulsedos.BuildDumbbell(pulsedos.DefaultDumbbellConfig(cfg.Elephants))
	if err != nil {
		return err
	}
	extent := 75 * time.Millisecond
	plan, err := pulsedos.PlanAttack(env.ModelParams(), extent.Seconds(), 40e6, 1)
	if err != nil {
		return err
	}
	period := time.Duration(plan.Period * float64(time.Second))
	train, err := pulsedos.AIMDTrain(extent, 40e6, period, int(cfg.Measure/period)+2)
	if err != nil {
		return err
	}
	cfg.Train = &train
	attacked, err := pulsedos.MiceStudy(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("workload: %d elephants + %d mice of %d kB each\n",
		cfg.Elephants, cfg.Mice, cfg.MiceSegments)
	fmt.Printf("attack:   gamma*=%.3f, T_AIMD=%.0f ms (planned, kappa=1)\n\n",
		plan.Gamma, plan.Period*1000)
	fmt.Printf("%-22s %-12s %-12s\n", "metric", "baseline", "attacked")
	fmt.Printf("%-22s %-12d %-12d\n", "mice completed", base.Completed, attacked.Completed)
	fmt.Printf("%-22s %-12.2f %-12.2f\n", "mean FCT (s)", base.MeanFCT, attacked.MeanFCT)
	fmt.Printf("%-22s %-12.2f %-12.2f\n", "median FCT (s)", base.MedianFCT, attacked.MedianFCT)
	fmt.Printf("%-22s %-12.2f %-12.2f\n", "p95 FCT (s)", base.P95FCT, attacked.P95FCT)
	fmt.Printf("%-22s %-12.2f %-12.2f\n", "elephant goodput (Mbps)",
		mbps(base.ElephantBytes, cfg.Measure), mbps(attacked.ElephantBytes, cfg.Measure))
	return nil
}

func mbps(bytes uint64, span time.Duration) float64 {
	return float64(bytes) * 8 / span.Seconds() / 1e6
}
