// Riskprofiles: explore the paper's §3.2 corollaries. For attackers ranging
// from strongly risk-loving (κ → 0) through risk-neutral (κ = 1) to strongly
// risk-averse (κ → ∞), compute the optimal γ*, the optimal attack period,
// and the resulting gain — showing the limits γ* → 1 (Corollary 2) and
// γ* → C_Ψ (Corollary 1), and γ* = √C_Ψ at κ = 1 (Corollary 3).
//
// Run with: go run ./examples/riskprofiles
package main

import (
	"fmt"
	"math"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "riskprofiles:", err)
		os.Exit(1)
	}
}

func run() error {
	// Victim population: the paper's test-bed (10 flows, 10 Mbps, ~300 ms
	// RTT, Linux delayed ACKs).
	env, err := pulsedos.BuildTestbed(pulsedos.DefaultTestbedConfig(10))
	if err != nil {
		return err
	}
	params := env.ModelParams()
	extent := 150 * time.Millisecond
	const rate = 20e6
	cPsi := params.CPsi(extent.Seconds(), rate)

	fmt.Printf("victims: %d flows, C_victim=%.4f, C_Psi=%.4f (Textent=%v, Rattack=%.0f Mbps)\n\n",
		len(params.RTTs), params.CVictim(), cPsi, extent, rate/1e6)
	fmt.Printf("%-10s %-14s %-9s %-9s %-12s %-9s\n",
		"kappa", "profile", "gamma*", "mu*", "T_AIMD (s)", "gain")

	for _, kappa := range []float64{0.01, 0.1, 0.5, 1, 2, 5, 20, 100} {
		plan, err := pulsedos.PlanAttack(params, extent.Seconds(), rate, kappa)
		if err != nil {
			fmt.Printf("%-10.2f %-14s (infeasible: %v)\n", kappa, pulsedos.ClassifyRisk(kappa), err)
			continue
		}
		fmt.Printf("%-10.2f %-14s %-9.4f %-9.3f %-12.3f %-9.4f\n",
			kappa, pulsedos.ClassifyRisk(kappa), plan.Gamma, plan.Mu, plan.Period, plan.Gain)
	}

	// Corollary limits.
	fmt.Printf("\nCorollary 1 (kappa→inf): gamma* → C_Psi = %.4f\n", cPsi)
	fmt.Printf("Corollary 2 (kappa→0)  : gamma* → 1\n")
	gStar, err := pulsedos.OptimalGamma(cPsi, 1)
	if err != nil {
		return err
	}
	fmt.Printf("Corollary 3 (kappa=1)  : gamma* = sqrt(C_Psi) = %.4f (closed form %.4f)\n",
		math.Sqrt(cPsi), gStar)
	return nil
}
