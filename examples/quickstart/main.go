// Quickstart: plan an optimal PDoS attack analytically, then validate it in
// simulation — the paper's core workflow in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Describe the victims: 15 TCP NewReno flows sharing a 15 Mbps
	//    bottleneck, RTTs from 20 ms to 460 ms (the paper's Fig. 5 setup).
	cfg := pulsedos.DefaultDumbbellConfig(15)

	// 2. Plan the attack analytically for a risk-neutral attacker (κ = 1):
	//    75 ms pulses at 35 Mbps, optimal period from Proposition 4.
	env, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}
	params := env.ModelParams()
	extent := 75 * time.Millisecond
	const rate, kappa = 35e6, 1.0
	plan, err := pulsedos.PlanAttack(params, extent.Seconds(), rate, kappa)
	if err != nil {
		return err
	}
	fmt.Printf("planned attack: gamma*=%.3f  T_AIMD=%.0f ms  predicted gain=%.3f\n",
		plan.Gamma, plan.Period*1000, plan.Gain)

	// 3. Validate in simulation: baseline throughput vs attacked throughput.
	const warmup, measure = 8 * time.Second, 20 * time.Second
	base, err := pulsedos.Run(env, pulsedos.RunOptions{Warmup: warmup, Measure: measure})
	if err != nil {
		return err
	}

	period := time.Duration(plan.Period * float64(time.Second))
	train, err := pulsedos.AIMDTrain(extent, rate, period, int(measure/period)+2)
	if err != nil {
		return err
	}
	attacked, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}
	res, err := pulsedos.Run(attacked, pulsedos.RunOptions{
		Warmup:  warmup,
		Measure: measure,
		Train:   &train,
	})
	if err != nil {
		return err
	}

	deg := 1 - float64(res.Delivered)/float64(base.Delivered)
	fmt.Printf("baseline: %.2f Mbps   attacked: %.2f Mbps\n",
		mbps(base.Delivered, measure), mbps(res.Delivered, measure))
	fmt.Printf("measured degradation=%.3f  measured gain=%.3f\n",
		deg, deg*pulsedos.RiskFactor(plan.Gamma, kappa))
	fmt.Printf("attack cost: %d packets, average rate %.2f Mbps (%.0f%% of bottleneck)\n",
		res.AttackStats.PacketsSent,
		plan.Gamma*params.Bottleneck/1e6, 100*plan.Gamma)
	return nil
}

func mbps(bytes uint64, span time.Duration) float64 {
	return float64(bytes) * 8 / span.Seconds() / 1e6
}
