// Defense: evaluate the two countermeasures the paper's related work
// discusses (§1.1, §5) against both PDoS attack archetypes:
//
//   - RTO randomization (Yang/Gerla/Sanadidi): stretches each retransmission
//     timer by a random factor, so shrew pulses no longer collide with
//     retransmissions — but the AIMD-based attack, which exploits fast
//     recovery rather than timeouts, is untouched (the paper's argument for
//     why the AIMD-based attack is the more robust threat).
//   - Adaptive RED (the §5 enhancement direction): self-tunes max_p so the
//     average queue stays centred, absorbing pulses better than plain RED.
//
// Run with: go run ./examples/defense
package main

import (
	"fmt"
	"os"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "defense:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := pulsedos.DefaultDefenseStudyConfig()
	fmt.Printf("victims: %d flows; attack pulses %.0f Mbps x %v; shrew period = minRTO = %v\n\n",
		cfg.Flows, cfg.AttackRate/1e6, cfg.Extent, cfg.MinRTO)

	results, err := pulsedos.DefenseStudy(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-14s %-8s %-12s %-12s %-12s %-8s\n",
		"defense", "attack", "baseline", "attacked", "degradation", "TO/FR")
	for _, r := range results {
		fmt.Printf("%-14s %-8s %-12.2f %-12.2f %-12.3f %d/%d\n",
			r.Defense, r.Attack, r.BaselineMbps, r.AttackedMbps, r.Degradation,
			r.Timeouts, r.FastRecoveries)
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" - rto-jitter cuts the shrew's damage (fewer timeouts) but leaves the")
	fmt.Println("   AIMD-based attack untouched — the paper's motivation for §2-3;")
	fmt.Println(" - adaptive-red absorbs pulses better than plain RED, trimming both.")
	return nil
}
