// Testbed: drive the paper's Dummynet test-bed emulation (§4.2, Figs. 11–12)
// through the iperf-style workload generator: 10 legitimate bulk TCP flows
// through a 10 Mbps / 150 ms RED pipe, attacked by 150 ms pulses at
// 20 Mbps (the paper's normal-gain setting), with per-interval throughput
// reports like iperf -i.
//
// Run with: go run ./examples/testbed
package main

import (
	"fmt"
	"os"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := pulsedos.DefaultTestbedConfig(10)
	const (
		rate    = 20e6
		extent  = 150 * time.Millisecond
		warmup  = 10 * time.Second
		measure = 30 * time.Second
	)

	// Plan the risk-neutral optimum on this victim population.
	planner, err := pulsedos.BuildTestbed(cfg)
	if err != nil {
		return err
	}
	params := planner.ModelParams()
	plan, err := pulsedos.PlanAttack(params, extent.Seconds(), rate, 1)
	if err != nil {
		return err
	}
	fmt.Printf("test-bed: %d flows through %.0f Mbps / %v Dummynet pipe (RED)\n",
		cfg.Flows, cfg.BottleneckRate/1e6, cfg.PipeDelay)
	fmt.Printf("planned attack: gamma*=%.3f T_AIMD=%.0f ms predicted gain=%.3f\n\n",
		plan.Gamma, plan.Period*1000, plan.Gain)

	// Baseline run.
	base, err := pulsedos.Run(planner, pulsedos.RunOptions{Warmup: warmup, Measure: measure})
	if err != nil {
		return err
	}

	// Attacked run with the planned period.
	period := time.Duration(plan.Period * float64(time.Second))
	train, err := pulsedos.AIMDTrain(extent, rate, period, int(measure/period)+2)
	if err != nil {
		return err
	}
	env, err := pulsedos.BuildTestbed(cfg)
	if err != nil {
		return err
	}
	res, err := pulsedos.Run(env, pulsedos.RunOptions{
		Warmup:  warmup,
		Measure: measure,
		Train:   &train,
		RateBin: 500 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// iperf-style interval report of the aggregate incoming rate.
	fmt.Println("interval            aggregate rate")
	rates := res.Rate.Rates()
	const perRow = 4 // 2 s rows from 500 ms bins
	for i := 0; i+perRow <= len(rates); i += perRow {
		sum := 0.0
		for _, r := range rates[i : i+perRow] {
			sum += r
		}
		start := time.Duration(i) * 500 * time.Millisecond
		end := start + perRow*500*time.Millisecond
		fmt.Printf("%6.1fs - %6.1fs   %6.2f Mbps\n",
			start.Seconds(), end.Seconds(), sum/perRow/1e6)
	}

	deg := 1 - float64(res.Delivered)/float64(base.Delivered)
	fmt.Printf("\nbaseline %.2f Mbps -> attacked %.2f Mbps: degradation %.3f, gain %.3f\n",
		mbps(base.Delivered, measure), mbps(res.Delivered, measure),
		deg, deg*pulsedos.RiskFactor(plan.Gamma, 1))
	fmt.Printf("victim TO/FR entries: %d/%d (baseline %d/%d)\n",
		res.Timeouts, res.FastRecoveries, base.Timeouts, base.FastRecoveries)
	return nil
}

func mbps(bytes uint64, span time.Duration) float64 {
	return float64(bytes) * 8 / span.Seconds() / 1e6
}
