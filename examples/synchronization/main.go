// Synchronization: reproduce the paper's quasi-global synchronization
// phenomenon (§2.3, Figs. 2–3). A PDoS pulse train imposes its own period on
// the aggregate incoming traffic; the example recovers T_AIMD from the
// normalized, PAA-compressed traffic signal by counting pinnacles, exactly
// as the paper does (30 peaks in 60 s ⇒ 2 s period).
//
// Run with: go run ./examples/synchronization
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"pulsedos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "synchronization:", err)
		os.Exit(1)
	}
}

func run() error {
	// The paper's Fig. 3(a) setup: 24 victim flows, Textent = 50 ms,
	// Tspace = 1950 ms, Rattack = 100 Mbps (period T_AIMD = 2 s).
	cfg := pulsedos.DefaultDumbbellConfig(24)
	env, err := pulsedos.BuildDumbbell(cfg)
	if err != nil {
		return err
	}
	const (
		extent   = 50 * time.Millisecond
		space    = 1950 * time.Millisecond
		rate     = 100e6
		duration = 60 * time.Second
	)
	period := extent + space
	train := pulsedos.UniformTrain(extent, rate, space, int(duration/period)+2)

	sync, err := pulsedos.SyncSnapshot(env, train, 8*time.Second, duration,
		50*time.Millisecond, 240)
	if err != nil {
		return err
	}

	fmt.Printf("attack period T_AIMD      : %v\n", period)
	fmt.Printf("pinnacles in %.0f s snapshot: %d\n", sync.DurationSec, sync.Peaks)
	fmt.Printf("period from peak counting : %.2f s\n", sync.PeakPeriodSec)
	if sync.AutoPeriodSec > 0 {
		fmt.Printf("period from autocorrelation: %.2f s\n", sync.AutoPeriodSec)
	}

	// ASCII rendering of the PAA frames (the paper's Fig. 3 bars).
	fmt.Println("\nnormalized incoming traffic (PAA, one row per second):")
	perRow := int(float64(len(sync.Frames)) / sync.DurationSec)
	if perRow < 1 {
		perRow = 1
	}
	min, max := sync.Frames[0], sync.Frames[0]
	for _, v := range sync.Frames {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	for row := 0; row+perRow <= len(sync.Frames); row += perRow {
		var b strings.Builder
		fmt.Fprintf(&b, "%3ds |", row/perRow)
		for _, v := range sync.Frames[row : row+perRow] {
			b.WriteString(bar(v, min, max))
		}
		fmt.Println(b.String())
	}
	return nil
}

// bar maps a frame value to a 5-level ASCII intensity.
func bar(v, min, max float64) string {
	if max <= min {
		return " "
	}
	levels := []string{" ", ".", ":", "+", "#"}
	idx := int((v - min) / (max - min) * float64(len(levels)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}
