module pulsedos

go 1.22
