package pulsedos

import (
	"encoding/json"
	"os"
	"testing"

	"pulsedos/internal/perf"
)

// TestFusionReportBudgets guards the committed event-fusion report:
// BENCH_6.json (regenerated with `make fusion-bench`) must parse into the
// perf schema and uphold the headline claim — the fused one-kernel-event-
// per-link-hop schedule (DESIGN.md §14) fires at least 25% fewer kernel
// events per bottleneck packet than the golden two-event
// serialize→propagate reference at the 10k-flow scale point, stays
// allocation-free in the measurement window, and produces byte-identical
// model observables. As with the other report guards, the test checks the
// committed artifact, so it is deterministic everywhere; the budgets get
// re-litigated only when the report is regenerated.
func TestFusionReportBudgets(t *testing.T) {
	data, err := os.ReadFile("BENCH_6.json")
	if err != nil {
		t.Fatalf("BENCH_6.json must be committed: %v", err)
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_6.json does not parse into perf.Report: %v", err)
	}
	f := rep.Fusion
	if f == nil {
		t.Fatal("report carries no fusion study")
	}
	if f.Flows != 10_000 {
		t.Errorf("fusion study ran at %d flows, want the 10000-flow scale point", f.Flows)
	}
	if f.Golden.Packets == 0 || f.Fused.Packets == 0 || f.VirtualSeconds <= 0 {
		t.Fatalf("fusion legs carry no measurement window (golden %d / fused %d packets, %.1f vsec)",
			f.Golden.Packets, f.Fused.Packets, f.VirtualSeconds)
	}

	// The tentpole budget: >= 25% fewer raw scheduler events per bottleneck
	// packet than the golden schedule on the identical scenario.
	if f.EventsPerPacketReductionPct < 25 {
		t.Errorf("fused path reduces events/packet by %.1f%% (%.3f -> %.3f), below the 25%% floor",
			f.EventsPerPacketReductionPct, f.Golden.EventsPerPacket, f.Fused.EventsPerPacket)
	}
	// Fusion is an event-count optimization, not an allocation trade: both
	// legs stay allocation-free per packet in the measurement window.
	if f.Golden.AllocsPerPacket > 0.01 {
		t.Errorf("golden leg: %.4f allocs/packet, want 0", f.Golden.AllocsPerPacket)
	}
	if f.Fused.AllocsPerPacket > 0.01 {
		t.Errorf("fused leg: %.4f allocs/packet, want 0", f.Fused.AllocsPerPacket)
	}
	// The equivalence contract, as recorded by the run itself: identical
	// victim goodput and bottleneck packet counts, and the golden leg's raw
	// schedule equal to the fused leg's raw schedule plus its elisions.
	if !f.DeliveredMatch {
		t.Error("fused leg diverged from golden in delivered bytes or bottleneck packets")
	}
	if !f.ModelEventsMatch {
		t.Errorf("normalized model events diverged: golden %d kernel / %d model vs fused %d kernel + %d skipped / %d model",
			f.Golden.KernelEvents, f.Golden.ModelEvents,
			f.Fused.KernelEvents, f.FusedSkippedEvents, f.Fused.ModelEvents)
	}
	if f.FusedSkippedEvents == 0 {
		t.Error("fused leg elided no events — the fused path did not engage")
	}

	// Cross-report anchor: the ISSUE's baseline is BENCH_4's 10k-flow scale
	// point (8.537 events/packet). The fused leg must clear the same >= 25%
	// bar against that committed measurement, not just against its own
	// golden leg — guarding against the golden leg itself regressing upward.
	b4, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Fatalf("BENCH_4.json must be committed: %v", err)
	}
	var prev perf.Report
	if err := json.Unmarshal(b4, &prev); err != nil {
		t.Fatalf("BENCH_4.json does not parse into perf.Report: %v", err)
	}
	for _, p := range prev.Scale {
		if p.Flows != 10_000 || p.SkippedOOM || p.Packets == 0 {
			continue
		}
		baseline := float64(p.Events) / float64(p.Packets)
		if f.Fused.EventsPerPacket > 0.75*baseline {
			t.Errorf("fused %.3f events/packet vs BENCH_4 10k baseline %.3f: reduction %.1f%% is below the 25%% floor",
				f.Fused.EventsPerPacket, baseline, 100*(1-f.Fused.EventsPerPacket/baseline))
		}
	}
}
