// Package pulsedos is a from-scratch reproduction of "Optimizing the Pulsing
// Denial-of-Service Attacks" (Luo & Chang, DSN 2005). It bundles:
//
//   - an analytical model of the AIMD-based PDoS attack (converged window,
//     throughput degradation Γ, attack gain G = Γ·(1-γ)^κ);
//   - the closed-form attack optimizer of Propositions 3–4 with the
//     risk-averse / risk-neutral / risk-loving corollaries;
//   - a deterministic packet-level network simulator (TCP NewReno/Reno/Tahoe
//     with generalized AIMD(a,b), RED and drop-tail queues, pulse-train
//     attack sources) standing in for the paper's ns-2 environment;
//   - a Dummynet-style test-bed emulation with iperf-like workloads; and
//   - the experiment harness that regenerates every figure of the paper's
//     evaluation (§4).
//
// The package is a facade: it re-exports the stable surface of the internal
// packages so applications depend on one import path.
//
// # Quick start
//
//	params := pulsedos.ModelParams{
//		AIMD:       pulsedos.TCPAIMD(),
//		AckRatio:   1,
//		PacketSize: 1040,
//		Bottleneck: 15e6,
//		RTTs:       []float64{0.02, 0.24, 0.46},
//	}
//	plan, err := pulsedos.PlanAttack(params, 0.075, 35e6, 1) // κ = 1
//	// plan.Period is the optimal T_AIMD; plan.Gain the predicted gain.
//
// Use BuildDumbbell / BuildTestbed plus Run and GainSweep to validate plans
// in simulation, exactly as the paper validates with ns-2 and its test-bed.
package pulsedos

import (
	"time"

	"pulsedos/internal/analysis"
	"pulsedos/internal/attack"
	"pulsedos/internal/detect"
	"pulsedos/internal/experiments"
	"pulsedos/internal/model"
	"pulsedos/internal/optimize"
	"pulsedos/internal/rng"
	"pulsedos/internal/sim"
)

// Core analytic-model surface.
type (
	// ModelParams describes the victim population and bottleneck (the
	// paper's a, b, d, S_packet, R_bottle, and RTT set).
	ModelParams = model.Params
	// AIMD carries the general AIMD(a,b) parameters.
	AIMD = model.AIMD
	// Attack describes one uniform pulse train analytically.
	AttackSpec = model.Attack
	// RiskPreference classifies κ (risk-loving / neutral / averse).
	RiskPreference = model.RiskPreference
	// Plan is a fully resolved optimal attack.
	Plan = optimize.Plan
)

// Risk-preference classes re-exported from the model.
const (
	RiskLoving  = model.RiskLoving
	RiskNeutral = model.RiskNeutral
	RiskAverse  = model.RiskAverse
)

// TCPAIMD returns AIMD(1, 0.5), the parameters of standard TCP.
func TCPAIMD() AIMD { return model.TCPAIMD() }

// Degradation evaluates Γ = 1 - C_Ψ/γ (Proposition 2).
func Degradation(cPsi, gamma float64) float64 { return model.Degradation(cPsi, gamma) }

// RiskFactor evaluates (1-γ)^κ (Fig. 4).
func RiskFactor(gamma, kappa float64) float64 { return model.RiskFactor(gamma, kappa) }

// Gain evaluates the attack gain G = Γ·(1-γ)^κ (Eq. 5/12).
func Gain(cPsi, gamma, kappa float64) float64 { return model.Gain(cPsi, gamma, kappa) }

// ClassifyRisk maps κ to its preference class.
func ClassifyRisk(kappa float64) RiskPreference { return model.ClassifyRisk(kappa) }

// OptimalGamma evaluates Proposition 3's closed-form maximizer γ*.
func OptimalGamma(cPsi, kappa float64) (float64, error) {
	return optimize.OptimalGamma(cPsi, kappa)
}

// PlanAttack computes the optimal attack period for a victim population,
// pulse width (seconds), pulse rate (bps), and risk preference κ
// (Proposition 4 / Corollary 4).
func PlanAttack(p ModelParams, extentSec, rate, kappa float64) (Plan, error) {
	return optimize.PlanAttack(p, extentSec, rate, kappa)
}

// SensitivityPoint quantifies the regret of planning on a mis-estimated C_Ψ.
type SensitivityPoint = optimize.SensitivityPoint

// Sensitivity evaluates plan robustness to C_Ψ estimation error.
func Sensitivity(trueCPsi, kappa float64, factors []float64) ([]SensitivityPoint, error) {
	return optimize.Sensitivity(trueCPsi, kappa, factors)
}

// Attack-traffic surface.
type (
	// Pulse is one burst of a pulse train.
	Pulse = attack.Pulse
	// Train is a finite pulse sequence A(Textent, Rattack, Tspace, N).
	Train = attack.Train
)

// UniformTrain builds N identical pulses (the analysis's assumption).
func UniformTrain(extent time.Duration, rate float64, space time.Duration, n int) Train {
	return attack.Uniform(sim.FromDuration(extent), rate, sim.FromDuration(space), n)
}

// AIMDTrain builds a uniform train from the attack period T_AIMD.
func AIMDTrain(extent time.Duration, rate float64, period time.Duration, n int) (Train, error) {
	return attack.AIMDTrain(sim.FromDuration(extent), rate, sim.FromDuration(period), n)
}

// ShrewTrain builds a timeout-based (shrew) train resonating with minRTO.
func ShrewTrain(extent time.Duration, rate float64, minRTO time.Duration, harmonic, n int) (Train, error) {
	return attack.ShrewTrain(sim.FromDuration(extent), rate, sim.FromDuration(minRTO), harmonic, n)
}

// FloodTrain builds the flooding baseline (one continuous burst).
func FloodTrain(rate float64, duration time.Duration) Train {
	return attack.FloodTrain(rate, sim.FromDuration(duration))
}

// JitteredTrain builds a train with ±jitterFrac randomized inter-pulse gaps
// (same mean γ), the natural evasion against pulse-shape detectors.
func JitteredTrain(extent time.Duration, rate float64, space time.Duration, n int, jitterFrac float64, seed uint64) (Train, error) {
	return attack.JitteredTrain(sim.FromDuration(extent), rate, sim.FromDuration(space),
		n, jitterFrac, rng.New(seed))
}

// Simulation-environment surface.
type (
	// DumbbellConfig parameterizes the Fig. 5 ns-2 topology.
	DumbbellConfig = experiments.DumbbellConfig
	// TestbedConfig parameterizes the Fig. 11 Dummynet test-bed.
	TestbedConfig = experiments.TestbedConfig
	// Environment abstracts either topology for the runners.
	Environment = experiments.Environment
	// RunOptions parameterizes one scenario execution.
	RunOptions = experiments.RunOptions
	// RunResult carries a scenario's measurements.
	RunResult = experiments.RunResult
	// SweepConfig parameterizes a gain-vs-γ curve.
	SweepConfig = experiments.SweepConfig
	// GainPoint is one sample of a gain curve.
	GainPoint = experiments.GainPoint
	// GainClass is the §4.1.1 normal/under/over-gain taxonomy.
	GainClass = experiments.GainClass
	// SyncResult is a Fig. 3 synchronization snapshot.
	SyncResult = experiments.SyncResult
	// ShrewPoint annotates a sweep sample with shrew-resonance status.
	ShrewPoint = experiments.ShrewPoint
	// ShrewStudyConfig parameterizes a Fig. 10 study.
	ShrewStudyConfig = experiments.ShrewStudyConfig
	// CwndSample is one point of a Fig. 1 window trace.
	CwndSample = experiments.CwndSample
	// Series is a labelled curve for CSV export.
	Series = experiments.Series
	// Point is one (x, y) sample.
	Point = experiments.Point
	// DetectionPoint reports detector verdicts at one γ.
	DetectionPoint = experiments.DetectionPoint
	// Detector is the detection-algorithm interface.
	Detector = detect.Detector
)

// Gain classes re-exported from the experiment harness.
const (
	NormalGain = experiments.NormalGain
	UnderGain  = experiments.UnderGain
	OverGain   = experiments.OverGain
)

// DefaultDumbbellConfig returns the paper's ns-2 settings.
func DefaultDumbbellConfig(flows int) DumbbellConfig {
	return experiments.DefaultDumbbellConfig(flows)
}

// DefaultTestbedConfig returns the paper's test-bed settings.
func DefaultTestbedConfig(flows int) TestbedConfig {
	return experiments.DefaultTestbedConfig(flows)
}

// BuildDumbbell wires a Fig. 5 dumbbell environment.
func BuildDumbbell(cfg DumbbellConfig) (*experiments.Dumbbell, error) {
	return experiments.BuildDumbbell(cfg)
}

// BuildShardedDumbbell wires the Fig. 5 dumbbell across `workers` shards of
// the conservative parallel engine. Results are bit-identical to the serial
// BuildDumbbell at any worker count; call Close when done to join the shard
// goroutines.
func BuildShardedDumbbell(cfg DumbbellConfig, workers int) (*experiments.ShardedDumbbell, error) {
	return experiments.BuildShardedDumbbell(cfg, workers)
}

// BuildTestbed wires a Fig. 11 test-bed environment.
func BuildTestbed(cfg TestbedConfig) (*experiments.Testbed, error) {
	return experiments.BuildTestbed(cfg)
}

// Run executes one scenario on a freshly built environment.
func Run(env Environment, opt RunOptions) (*RunResult, error) {
	return experiments.Run(env, opt)
}

// GainSweep produces one gain-vs-γ curve (analytic + measured).
func GainSweep(cfg SweepConfig) ([]GainPoint, error) {
	return experiments.GainSweep(cfg)
}

// ClassifyGain reduces a curve to its §4.1.1 class.
func ClassifyGain(points []GainPoint, tol float64) GainClass {
	return experiments.ClassifyGain(points, tol)
}

// SyncSnapshot reproduces a Fig. 3 quasi-global-synchronization snapshot.
func SyncSnapshot(env Environment, train Train, warmup, duration, bin time.Duration, frames int) (*SyncResult, error) {
	return experiments.SyncSnapshot(env, train, warmup, duration, bin, frames)
}

// ShrewStudy runs a Fig. 10 resonance study.
func ShrewStudy(cfg ShrewStudyConfig) ([]ShrewPoint, error) {
	return experiments.ShrewStudy(cfg)
}

// CwndTrace records a victim's congestion window under attack (Fig. 1).
func CwndTrace(env Environment, train Train, flowIdx int, warmup, duration time.Duration) ([]CwndSample, error) {
	return experiments.CwndTrace(env, train, flowIdx, warmup, duration)
}

// RiskCurves evaluates the Fig. 4 family (1-γ)^κ.
func RiskCurves(kappas []float64, n int) []Series {
	return experiments.RiskCurves(kappas, n)
}

// PAA computes the piecewise aggregate approximation used in Fig. 3.
func PAA(series []float64, frames int) ([]float64, error) {
	return analysis.PAA(series, frames)
}

// PeriodForGamma solves γ = R_attack·T_extent/(R_bottle·T_AIMD) for T_AIMD.
func PeriodForGamma(gamma, attackRate float64, extent time.Duration, bottleneck float64) time.Duration {
	return experiments.PeriodForGamma(gamma, attackRate, extent, bottleneck)
}

// DefaultGammaGrid returns the sweep grid used throughout the reproduction.
func DefaultGammaGrid() []float64 { return experiments.DefaultGammaGrid() }

// CoarseGammaGrid returns a cheap 5-point grid for demos and benches.
func CoarseGammaGrid() []float64 { return experiments.CoarseGammaGrid() }

// Detection-evaluation surface.
type (
	// ROCStudyConfig parameterizes an empirical detector-ROC measurement.
	ROCStudyConfig = experiments.ROCStudyConfig
	// ROCResult reports one detector's discrimination power (AUC).
	ROCResult = experiments.ROCResult
	// ROCPoint is one (threshold, TPR, FPR) operating point.
	ROCPoint = detect.ROCPoint
)

// DetectorROCStudy measures how well detectors separate attacked from calm
// simulated traffic at a given attack intensity.
func DetectorROCStudy(cfg ROCStudyConfig) ([]ROCResult, error) {
	return experiments.DetectorROCStudy(cfg)
}

// ROC sweeps a score threshold over evidence scores from attacked and calm
// traces.
func ROC(attackScores, calmScores, thresholds []float64) []ROCPoint {
	return detect.ROC(attackScores, calmScores, thresholds)
}

// AUC integrates an ROC curve (0.5 = chance, 1.0 = perfect).
func AUC(points []ROCPoint) float64 { return detect.AUC(points) }

// Maximization-point surface (§4.1.2).
type (
	// MaximizationStudyConfig parameterizes the peak-location comparison.
	MaximizationStudyConfig = experiments.MaximizationStudyConfig
	// MaximizationPoint compares analytic gamma* to the measured peak.
	MaximizationPoint = experiments.MaximizationPoint
	// MaximizationSetting is one (R_attack, T_extent) cell.
	MaximizationSetting = experiments.MaximizationSetting
)

// DefaultMaximizationStudyConfig compares the paper's normal-gain settings.
func DefaultMaximizationStudyConfig() MaximizationStudyConfig {
	return experiments.DefaultMaximizationStudyConfig()
}

// MaximizationStudy locates analytic vs measured gain peaks per setting.
func MaximizationStudy(cfg MaximizationStudyConfig) ([]MaximizationPoint, error) {
	return experiments.MaximizationStudy(cfg)
}

// Workload-study surface.
type (
	// MiceConfig parameterizes the mice-vs-elephants FCT study.
	MiceConfig = experiments.MiceConfig
	// MiceResult aggregates flow-completion-time outcomes.
	MiceResult = experiments.MiceResult
)

// DefaultMiceConfig returns a moderate short-flow workload.
func DefaultMiceConfig() MiceConfig { return experiments.DefaultMiceConfig() }

// MiceStudy measures short-flow completion times under an optional attack.
func MiceStudy(cfg MiceConfig) (*MiceResult, error) { return experiments.MiceStudy(cfg) }

// Defense-evaluation surface.
type (
	// DefenseStudyConfig parameterizes the §1.1 defense comparison.
	DefenseStudyConfig = experiments.DefenseStudyConfig
	// DefenseResult is one (defense, attack) cell of the comparison.
	DefenseResult = experiments.DefenseResult
)

// DefaultDefenseStudyConfig returns a study contrasting RTO randomization
// and Adaptive RED against the AIMD-based and shrew attacks.
func DefaultDefenseStudyConfig() DefenseStudyConfig {
	return experiments.DefaultDefenseStudyConfig()
}

// DefenseStudy measures every (defense, attack) combination.
func DefenseStudy(cfg DefenseStudyConfig) ([]DefenseResult, error) {
	return experiments.DefenseStudy(cfg)
}

// NewThresholdDetector builds the classic volume (flooding) detector.
func NewThresholdDetector(capacityBps, fraction float64, windowBins int) (Detector, error) {
	return detect.NewThreshold(capacityBps, fraction, windowBins)
}

// NewCUSUMDetector builds a change-point detector on the traffic series.
func NewCUSUMDetector(calibBins int, drift, h float64) (Detector, error) {
	return detect.NewCUSUM(calibBins, drift, h)
}

// NewDTWDetector builds a pulse-shape detector (Sun/Lui/Yau style).
func NewDTWDetector(templateBins int, dutyCycle, threshold float64) (Detector, error) {
	return detect.NewDTW(templateBins, dutyCycle, threshold)
}

// NewSpectralDetector builds a power-spectral-density detector that flags a
// dominant periodic component within [minPeriodSec, maxPeriodSec].
func NewSpectralDetector(minFraction, minPeriodSec, maxPeriodSec float64) (Detector, error) {
	return detect.NewSpectral(minFraction, minPeriodSec, maxPeriodSec)
}
