package pulsedos

import (
	"encoding/json"
	"os"
	"testing"

	"pulsedos/internal/perf"
)

// TestMillionFlowReportBudgets guards the committed million-flow report:
// BENCH_4.json (regenerated with `pdos-bench -scale-bench BENCH_4.json
// -foreground-flows 10000 -scale-flows 10000,100000,1000000`) must parse
// into the perf schema and uphold the headline claim — a 1,000,000-flow
// point that actually ran (not an OOM skip), split into the 10k
// packet-accurate foreground and the fluid background, allocation-free per
// packet, at a sustained event rate. As with the other report guards, the
// test checks the committed artifact, so it is deterministic everywhere;
// the budgets get re-litigated only when the report is regenerated.
func TestMillionFlowReportBudgets(t *testing.T) {
	data, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Fatalf("BENCH_4.json must be committed: %v", err)
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_4.json does not parse into perf.Report: %v", err)
	}
	if len(rep.Scale) == 0 {
		t.Fatal("report carries no scale points")
	}

	var million bool
	for _, p := range rep.Scale {
		if p.SkippedOOM {
			// An OOM-skipped point records only its population split; the
			// measurement fields are meaningless. The headline point must
			// not be one of these (checked below).
			continue
		}
		if p.AllocsPerPacket > 0.01 {
			t.Errorf("scale %d flows: %.4f allocs/packet, want 0", p.Flows, p.AllocsPerPacket)
		}
		if p.Flows != 1_000_000 {
			continue
		}
		million = true
		if p.PacketFlows != 10_000 || p.FluidFlows != 990_000 {
			t.Errorf("million-flow point split %d packet + %d fluid, want 10000 + 990000",
				p.PacketFlows, p.FluidFlows)
		}
		// Floor from the recorded run: the batched-portal engine sustains
		// >3M events/sec on a single 2026-era core at this population; 1M/s
		// leaves generous slack for slower regeneration hosts while still
		// catching an order-of-magnitude collapse (e.g. the RTO wheel
		// degenerating back to per-flow timers).
		if p.EventsPerSec < 1e6 {
			t.Errorf("million-flow point: %.0f events/sec is below the 1e6 floor", p.EventsPerSec)
		}
		if p.Packets == 0 || p.VirtualSeconds <= 0 {
			t.Errorf("million-flow point carries no measurement window (%d packets, %.1f vsec)",
				p.Packets, p.VirtualSeconds)
		}
	}
	if !million {
		t.Error("report lacks a measured (non-skipped) 1,000,000-flow point")
	}

	// Parallel cells are optional in a scale report; when present they obey
	// the same conditional speedup physics as BENCH_3 — the ≥2.5x bar at 4
	// workers arms only when the recorded host had ≥4 cores to run on.
	cores := rep.NumCPU
	if rep.MaxProcs > 0 && rep.MaxProcs < cores {
		cores = rep.MaxProcs
	}
	for _, p := range rep.Parallel {
		if p.AllocsPerPacket > 0.01 {
			t.Errorf("parallel %d flows x %d workers: %.4f allocs/packet, want 0",
				p.Flows, p.Workers, p.AllocsPerPacket)
		}
		if p.Workers > 1 && !p.MatchesSerial {
			t.Errorf("parallel %d flows x %d workers: diverged from the serial kernel",
				p.Flows, p.Workers)
		}
		if p.Workers == 4 && cores >= 4 && p.SpeedupVsSerial < 2.5 {
			t.Errorf("parallel %d flows x 4 workers: %.2fx vs serial is below the 2.5x floor (host had %d cores)",
				p.Flows, p.SpeedupVsSerial, cores)
		}
	}
}
