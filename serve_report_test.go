package pulsedos

import (
	"encoding/json"
	"os"
	"testing"

	"pulsedos/internal/perf"
)

// TestServeCacheBudgets guards the committed memoization trajectory: the
// BENCH_5.json report (regenerated with `pdos-bench -serve-bench
// BENCH_5.json`) must parse into the perf schema and uphold the two claims
// the content-addressed run cache is built on — a warm sweep answered from
// the cache is at least an order of magnitude faster than the cold sweep
// that computed it, and every cached artifact is byte-identical to a direct
// kernel recompute. Like the other report guards, this checks the committed
// artifact rather than re-running the service, so it is deterministic on any
// machine; regenerating the report is the moment the budgets get
// re-litigated.
func TestServeCacheBudgets(t *testing.T) {
	data, err := os.ReadFile("BENCH_5.json")
	if err != nil {
		t.Fatalf("BENCH_5.json must be committed: %v", err)
	}
	var rep perf.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("BENCH_5.json does not parse into perf.Report: %v", err)
	}
	sb := rep.Serve
	if sb == nil {
		t.Fatal("report carries no serve section")
	}

	// The sweep must be big enough to mean something: several distinct
	// scenarios through a real worker pool.
	if sb.Scenarios < 4 {
		t.Errorf("serve bench covers %d scenarios, want >= 4", sb.Scenarios)
	}
	if sb.Workers < 1 {
		t.Errorf("serve bench ran with %d workers, want >= 1", sb.Workers)
	}

	// The memoization headline: warm/cold throughput ratio >= 10x.
	if sb.WarmSpeedup < 10 {
		t.Errorf("warm sweep speedup %.1fx is below the 10x bar (cold %.3fs, warm %.3fs)",
			sb.WarmSpeedup, sb.ColdWallSeconds, sb.WarmWallSeconds)
	}
	if sb.ColdWallSeconds <= 0 || sb.WarmWallSeconds <= 0 {
		t.Errorf("implausible walls: cold %.6fs, warm %.6fs", sb.ColdWallSeconds, sb.WarmWallSeconds)
	}

	// The correctness premise: cached artifacts are bit-for-bit what the
	// kernel recomputes. A false here means determinism broke somewhere
	// between the kernel and the artifact encoders.
	if !sb.ByteIdentical {
		t.Error("cached artifacts diverged from direct recomputes; the cache's determinism premise is broken")
	}

	// Counter sanity: the warm sweep must have hit once per scenario, the
	// cold sweep missed at least once per scenario, and every scenario's
	// entry must still be resident (the bench sets no byte budget, so
	// nothing may have been evicted).
	if sb.CacheHits < uint64(sb.Scenarios) {
		t.Errorf("%d cache hits for %d scenarios, want >= one hit each", sb.CacheHits, sb.Scenarios)
	}
	if sb.CacheMisses < uint64(sb.Scenarios) {
		t.Errorf("%d cache misses for %d scenarios, want >= one miss each", sb.CacheMisses, sb.Scenarios)
	}
	if sb.CacheEvictions != 0 {
		t.Errorf("%d evictions in an unbounded cache, want 0", sb.CacheEvictions)
	}
	if sb.CacheEntries != sb.Scenarios {
		t.Errorf("%d cache entries for %d scenarios, want one per scenario", sb.CacheEntries, sb.Scenarios)
	}
	if sb.CacheBytes <= 0 {
		t.Error("cache reports zero resident bytes after a computed sweep")
	}
}
