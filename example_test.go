package pulsedos_test

import (
	"fmt"

	"pulsedos"
)

// ExampleOptimalGamma demonstrates Corollary 3: for a risk-neutral attacker
// the optimal normalized attack rate is the square root of the victim
// constant C_Ψ.
func ExampleOptimalGamma() {
	gamma, err := pulsedos.OptimalGamma(0.04, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gamma* = %.2f\n", gamma)
	// Output: gamma* = 0.20
}

// ExampleGain evaluates the attack-gain trade-off of Eq. 5/12 at the
// optimum and away from it.
func ExampleGain() {
	const cPsi, kappa = 0.04, 1.0
	gStar, _ := pulsedos.OptimalGamma(cPsi, kappa)
	fmt.Printf("at gamma*: %.3f\n", pulsedos.Gain(cPsi, gStar, kappa))
	fmt.Printf("too timid: %.3f\n", pulsedos.Gain(cPsi, 0.05, kappa))
	fmt.Printf("too loud : %.3f\n", pulsedos.Gain(cPsi, 0.95, kappa))
	// Output:
	// at gamma*: 0.640
	// too timid: 0.190
	// too loud : 0.048
}

// ExamplePlanAttack plans the full attack for a concrete victim population:
// the pulse period T_AIMD that realizes γ* for 75 ms pulses at 35 Mbps.
func ExamplePlanAttack() {
	params := pulsedos.ModelParams{
		AIMD:       pulsedos.TCPAIMD(),
		AckRatio:   1,
		PacketSize: 1040,
		Bottleneck: 15e6,
		RTTs:       []float64{0.1, 0.2, 0.3},
	}
	plan, err := pulsedos.PlanAttack(params, 0.075, 35e6, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("gamma* = %.3f\n", plan.Gamma)
	fmt.Printf("T_AIMD = %.0f ms\n", plan.Period*1000)
	// Output:
	// gamma* = 0.141
	// T_AIMD = 1243 ms
}

// ExampleClassifyRisk maps the paper's κ parameter to attacker profiles.
func ExampleClassifyRisk() {
	for _, kappa := range []float64{0.5, 1, 3} {
		fmt.Println(kappa, pulsedos.ClassifyRisk(kappa))
	}
	// Output:
	// 0.5 risk-loving
	// 1 risk-neutral
	// 3 risk-averse
}

// ExamplePAA compresses a series with the piecewise aggregate approximation
// used to visualize quasi-global synchronization (Fig. 3).
func ExamplePAA() {
	series := []float64{1, 1, 5, 5, 2, 2, 6, 6}
	frames, err := pulsedos.PAA(series, 4)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(frames)
	// Output: [1 5 2 6]
}

// ExampleRiskFactor shows the detection-risk weighting (1-γ)^κ of Fig. 4.
func ExampleRiskFactor() {
	fmt.Printf("risk-neutral at gamma=0.5: %.2f\n", pulsedos.RiskFactor(0.5, 1))
	fmt.Printf("risk-averse  at gamma=0.5: %.2f\n", pulsedos.RiskFactor(0.5, 3))
	// Output:
	// risk-neutral at gamma=0.5: 0.50
	// risk-averse  at gamma=0.5: 0.12
}
