package pulsedos

import (
	"math"
	"testing"
	"time"
)

// TestFacadePlanAndValidate exercises the package's headline workflow end to
// end: describe victims, plan the optimal attack, validate in simulation.
func TestFacadePlanAndValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation")
	}
	cfg := DefaultDumbbellConfig(10)
	env, err := BuildDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	params := env.ModelParams()
	extent := 75 * time.Millisecond
	plan, err := PlanAttack(params, extent.Seconds(), 35e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Gamma <= 0 || plan.Gamma >= 1 || plan.Period <= extent.Seconds() {
		t.Fatalf("plan = %+v", plan)
	}

	base, err := Run(env, RunOptions{Warmup: 5 * time.Second, Measure: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	period := time.Duration(plan.Period * float64(time.Second))
	train, err := AIMDTrain(extent, 35e6, period, int(10*time.Second/period)+2)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := BuildDumbbell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(attacked, RunOptions{
		Warmup:  5 * time.Second,
		Measure: 10 * time.Second,
		Train:   &train,
	})
	if err != nil {
		t.Fatal(err)
	}
	deg := 1 - float64(res.Delivered)/float64(base.Delivered)
	if deg < 0.1 {
		t.Errorf("planned attack degraded only %.3f", deg)
	}
}

func TestFacadeModelHelpers(t *testing.T) {
	aimd := TCPAIMD()
	if aimd.A != 1 || aimd.B != 0.5 {
		t.Errorf("TCPAIMD = %+v", aimd)
	}
	if got := Degradation(0.25, 0.5); got != 0.5 {
		t.Errorf("Degradation = %g", got)
	}
	if got := RiskFactor(0.5, 2); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("RiskFactor = %g", got)
	}
	if got := Gain(0.25, 0.5, 1); got != 0.25 {
		t.Errorf("Gain = %g", got)
	}
	if ClassifyRisk(0.5) != RiskLoving || ClassifyRisk(1) != RiskNeutral || ClassifyRisk(3) != RiskAverse {
		t.Error("risk classification")
	}
	gStar, err := OptimalGamma(0.04, 1)
	if err != nil || math.Abs(gStar-0.2) > 1e-12 {
		t.Errorf("OptimalGamma = %g, %v", gStar, err)
	}
}

func TestFacadeTrains(t *testing.T) {
	tr := UniformTrain(50*time.Millisecond, 40e6, 450*time.Millisecond, 10)
	if len(tr.Pulses) != 10 {
		t.Errorf("uniform pulses = %d", len(tr.Pulses))
	}
	if _, err := AIMDTrain(100*time.Millisecond, 40e6, 50*time.Millisecond, 10); err == nil {
		t.Error("bad AIMD train accepted")
	}
	st, err := ShrewTrain(50*time.Millisecond, 40e6, time.Second, 2, 5)
	if err != nil || st.Pulses[0].Period().Seconds() != 0.5 {
		t.Errorf("shrew train: %v", err)
	}
	fl := FloodTrain(40e6, time.Second)
	if len(fl.Pulses) != 1 {
		t.Error("flood train")
	}
	jt, err := JitteredTrain(50*time.Millisecond, 40e6, 450*time.Millisecond, 10, 0.2, 1)
	if err != nil || len(jt.Pulses) != 10 {
		t.Errorf("jittered train: %v", err)
	}
	if PeriodForGamma(0.5, 35e6, 75*time.Millisecond, 15e6) != 350*time.Millisecond {
		t.Error("PeriodForGamma")
	}
}

func TestFacadeGrids(t *testing.T) {
	full := DefaultGammaGrid()
	if len(full) < 15 {
		t.Errorf("default grid = %d points", len(full))
	}
	coarse := CoarseGammaGrid()
	if len(coarse) != 5 {
		t.Errorf("coarse grid = %d points", len(coarse))
	}
	for _, g := range append(full, coarse...) {
		if g <= 0 || g >= 1 {
			t.Errorf("grid point %g out of range", g)
		}
	}
}

func TestFacadeAnalysis(t *testing.T) {
	out, err := PAA([]float64{1, 1, 3, 3}, 2)
	if err != nil || len(out) != 2 || out[0] != 1 || out[1] != 3 {
		t.Errorf("PAA = %v, %v", out, err)
	}
	curves := RiskCurves([]float64{1}, 10)
	if len(curves) != 1 || len(curves[0].Points) != 11 {
		t.Error("RiskCurves")
	}
}

func TestFacadeDetectors(t *testing.T) {
	if _, err := NewThresholdDetector(1e6, 0.9, 10); err != nil {
		t.Error(err)
	}
	if _, err := NewCUSUMDetector(50, 0.5, 5); err != nil {
		t.Error(err)
	}
	if _, err := NewDTWDetector(40, 0.1, 0.5); err != nil {
		t.Error(err)
	}
	if _, err := NewThresholdDetector(0, 0.9, 10); err == nil {
		t.Error("bad detector accepted")
	}
}
